# Empty compiler generated dependencies file for mcfi_metrics.
# This may be replaced when dependencies are built.
