# Empty dependencies file for bench_cfggen_speed.
# This may be replaced when dependencies are built.
