//===- ctypes/SigIntern.h - Hash-consed canonical signatures ----*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing for canonical type signatures. Auxiliary module info
/// carries signatures as strings (TypeContext::canonicalSignature) so
/// modules compiled against different TypeContexts can be linked; every
/// CFG merge therefore used to re-hash and re-split those strings. The
/// SigInterner maps each canonical string to one process-wide
/// InternedSig object, so
///
///  - structural-equivalence checks between interned signatures are
///    pointer compares (equal strings <=> equal pointers);
///  - function signatures are split once at intern time, with parameter
///    and return signatures interned recursively, so the variadic
///    fixed-prefix rule (paper Sec. 6) also reduces to pointer compares
///    over the parsed parts;
///  - repeated merges over the same module set (every dlopen regenerates
///    the combined CFG) pay the string hashing exactly once per distinct
///    signature for the lifetime of the process.
///
/// The interner is thread-safe (sharded by hash) because the parallel
/// CFG-merge pipeline interns from worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_CTYPES_SIGINTERN_H
#define MCFI_CTYPES_SIGINTERN_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcfi {

/// One hash-consed canonical signature. Instances are owned by the
/// SigInterner and unique per signature text, so pointer equality is
/// signature equality.
struct InternedSig {
  std::string Sig;   ///< canonical signature text
  uint64_t Hash = 0; ///< FNV-1a of Sig (stable across runs)

  /// Parsed function shape; meaningful only when IsFunction. Params and
  /// Ret are themselves interned, so prefix matching over Params is a
  /// pointer-compare loop.
  bool IsFunction = false;
  bool Variadic = false;
  const InternedSig *Ret = nullptr;
  std::vector<const InternedSig *> Params;
};

/// FNV-1a over a byte range; the hash used for interning and for the
/// module content keys of the per-module signature cache.
uint64_t fnv1aHash(const void *Data, size_t Len,
                   uint64_t Seed = 0xcbf29ce484222325ull);

/// The process-wide intern table. Thread-safe; interning an
/// already-present signature takes one shard lock and one hash lookup.
class SigInterner {
public:
  /// The global interner the CFG pipeline uses.
  static SigInterner &global();

  /// Interns \p Sig, parsing its function shape on first sight.
  /// Never returns null; interning "" yields a (non-function) entry.
  const InternedSig *intern(std::string_view Sig);

  /// Distinct signatures interned so far (telemetry / tests).
  size_t size() const;

private:
  static constexpr size_t NumShards = 16;
  struct Shard {
    mutable std::mutex Lock;
    std::unordered_map<std::string_view, std::unique_ptr<InternedSig>> Map;
  };
  Shard Shards[NumShards];
};

/// The paper's matching rule over interned signatures: a function with
/// signature \p Callee may be invoked through a pointer with signature
/// \p Pointer that is (\p PointerVariadic ? variadic : exact). Exact
/// matching is one pointer compare; the variadic rule compares the
/// interned return signature and the fixed-parameter prefix by pointer.
bool internedCalleeMatches(const InternedSig *Pointer, bool PointerVariadic,
                           const InternedSig *Callee);

/// A cache slot: the interned signatures of one module's aux-info
/// arrays, in declaration order. Produced by the cfg layer's
/// getModuleSigs (which knows the MCFIObject shape) and keyed here by
/// module content hash, so reloading byte-identical module content —
/// every dlopen re-merge, and separate Machines loading the same
/// library — reuses the interned views without touching the strings.
using SigList = std::vector<const InternedSig *>;

/// Content-hash-keyed persistent cache of interned signature lists.
/// Thread-safe. The cache is bounded: when it exceeds a fixed capacity
/// it is cleared wholesale (entries are cheap to rebuild; the interner
/// itself never forgets, so re-population is hash lookups only).
class SigSetCache {
public:
  static SigSetCache &global();

  /// Returns the cached value for \p ContentHash, or null.
  std::shared_ptr<const void> lookup(uint64_t ContentHash) const;

  /// Stores \p Value under \p ContentHash and returns the cached copy
  /// (first writer wins on a race).
  std::shared_ptr<const void> store(uint64_t ContentHash,
                                    std::shared_ptr<const void> Value);

  /// Drops the entry for \p ContentHash (module unload: the merged CFG
  /// must hold no trace of the dead module, cached views included).
  /// Harmless if an identical-content module is still loaded — the next
  /// merge re-populates the entry from the interner with hash lookups
  /// only. Returns true if an entry was present.
  bool drop(uint64_t ContentHash);

  size_t size() const;

private:
  static constexpr size_t MaxEntries = 4096;
  mutable std::mutex Lock;
  std::unordered_map<uint64_t, std::shared_ptr<const void>> Map;
};

} // namespace mcfi

#endif // MCFI_CTYPES_SIGINTERN_H
