file(REMOVE_RECURSE
  "CMakeFiles/mcfi_metrics.dir/Harness.cpp.o"
  "CMakeFiles/mcfi_metrics.dir/Harness.cpp.o.d"
  "CMakeFiles/mcfi_metrics.dir/Metrics.cpp.o"
  "CMakeFiles/mcfi_metrics.dir/Metrics.cpp.o.d"
  "libmcfi_metrics.a"
  "libmcfi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
