//===- ctypes/SigIntern.cpp - Hash-consed canonical signatures ------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ctypes/SigIntern.h"

using namespace mcfi;

uint64_t mcfi::fnv1aHash(const void *Data, size_t Len, uint64_t Seed) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Len; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

/// Splits a canonical function signature "(<p1>,...,[...])-><ret>" into
/// views over \p Sig. Mirrors cfg/SigMatch.cpp's splitFnSig; canonical
/// forms nest only via (), {}, [] and back-references carry no
/// separators, so depth-0/1 scanning suffices.
bool splitCanonicalFn(std::string_view Sig, bool &Variadic,
                      std::string_view &Ret,
                      std::vector<std::string_view> &Params) {
  Variadic = false;
  Params.clear();
  if (Sig.empty() || Sig.front() != '(')
    return false;
  size_t Depth = 0;
  size_t ParamStart = 1;
  size_t Close = std::string_view::npos;
  for (size_t I = 0; I != Sig.size(); ++I) {
    char C = Sig[I];
    if (C == '(' || C == '{' || C == '[') {
      ++Depth;
      continue;
    }
    if (C == ')' || C == '}' || C == ']') {
      if (Depth == 0)
        return false;
      --Depth;
      if (Depth == 0 && C == ')') {
        Close = I;
        break;
      }
      continue;
    }
    if (C == ',' && Depth == 1) {
      std::string_view Piece = Sig.substr(ParamStart, I - ParamStart);
      if (Piece == "...")
        Variadic = true;
      else if (!Piece.empty())
        Params.push_back(Piece);
      ParamStart = I + 1;
    }
  }
  if (Close == std::string_view::npos)
    return false;
  std::string_view Last = Sig.substr(ParamStart, Close - ParamStart);
  if (Last == "...")
    Variadic = true;
  else if (!Last.empty())
    Params.push_back(Last);
  if (Sig.substr(Close + 1, 2) != "->")
    return false;
  Ret = Sig.substr(Close + 3);
  return !Ret.empty();
}

} // namespace

SigInterner &SigInterner::global() {
  static SigInterner Interner;
  return Interner;
}

const InternedSig *SigInterner::intern(std::string_view Sig) {
  uint64_t Hash = fnv1aHash(Sig.data(), Sig.size());
  Shard &S = Shards[Hash % NumShards];
  {
    std::lock_guard<std::mutex> Guard(S.Lock);
    auto It = S.Map.find(Sig);
    if (It != S.Map.end())
      return It->second.get();
  }

  // Miss: parse outside the lock. Parameter and return signatures are
  // interned recursively *before* this signature's shard is re-locked
  // (they may hash into the same shard).
  auto Fresh = std::make_unique<InternedSig>();
  Fresh->Sig = std::string(Sig);
  Fresh->Hash = Hash;
  bool Variadic = false;
  std::string_view Ret;
  std::vector<std::string_view> Params;
  if (splitCanonicalFn(Sig, Variadic, Ret, Params)) {
    Fresh->IsFunction = true;
    Fresh->Variadic = Variadic;
    Fresh->Ret = intern(Ret);
    Fresh->Params.reserve(Params.size());
    for (std::string_view P : Params)
      Fresh->Params.push_back(intern(P));
  }

  std::lock_guard<std::mutex> Guard(S.Lock);
  // The map key views the owned string, which the unique_ptr keeps at a
  // stable address for the interner's lifetime.
  auto [It, New] = S.Map.try_emplace(std::string_view(Fresh->Sig), nullptr);
  if (New)
    It->second = std::move(Fresh);
  return It->second.get();
}

size_t SigInterner::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.Lock);
    N += S.Map.size();
  }
  return N;
}

bool mcfi::internedCalleeMatches(const InternedSig *Pointer,
                                 bool PointerVariadic,
                                 const InternedSig *Callee) {
  if (Pointer == Callee)
    return true;
  if (!PointerVariadic || !Pointer || !Callee)
    return false;
  if (!Pointer->IsFunction || !Callee->IsFunction)
    return false;
  if (Pointer->Ret != Callee->Ret)
    return false;
  if (Callee->Params.size() < Pointer->Params.size())
    return false;
  for (size_t I = 0; I != Pointer->Params.size(); ++I)
    if (Pointer->Params[I] != Callee->Params[I])
      return false;
  return true;
}

SigSetCache &SigSetCache::global() {
  static SigSetCache Cache;
  return Cache;
}

std::shared_ptr<const void> SigSetCache::lookup(uint64_t ContentHash) const {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = Map.find(ContentHash);
  return It == Map.end() ? nullptr : It->second;
}

std::shared_ptr<const void>
SigSetCache::store(uint64_t ContentHash, std::shared_ptr<const void> Value) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Map.size() >= MaxEntries)
    Map.clear();
  auto [It, New] = Map.try_emplace(ContentHash, std::move(Value));
  return It->second;
}

bool SigSetCache::drop(uint64_t ContentHash) {
  std::lock_guard<std::mutex> Guard(Lock);
  return Map.erase(ContentHash) != 0;
}

size_t SigSetCache::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Map.size();
}
