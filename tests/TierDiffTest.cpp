//===- tests/TierDiffTest.cpp - Differential execution-tier harness -------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The tier correctness bar: a RunResult (stop reason, exit code,
/// retired-instruction count, message) and the guest's output must be
/// byte-identical whether a program runs on the decode-per-step
/// interpreter, the predecoded threaded-dispatch tier, or the trace
/// tier. Exercised over the SPEC-shaped workloads, the SecurityTest
/// attack corpus (mid-run memory corruption included), fuel-sliced
/// resumption, and seeded dlopen/trace-invalidation interleavings.
///
//===----------------------------------------------------------------------===//

#include "metrics/Harness.h"
#include "workload/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

using namespace mcfi;

namespace {

constexpr ExecTier AllTiers[] = {ExecTier::Interpreter, ExecTier::Threaded,
                                 ExecTier::Trace};

const char *tierName(ExecTier T) {
  switch (T) {
  case ExecTier::Interpreter:
    return "interpreter";
  case ExecTier::Threaded:
    return "threaded";
  case ExecTier::Trace:
    return "trace";
  }
  return "?";
}

struct TierRun {
  RunResult R;
  std::string Output;
  bool Ok = false;
};

void expectIdentical(const TierRun &Ref, const TierRun &Got, ExecTier Tier,
                     const std::string &What) {
  ASSERT_TRUE(Ref.Ok && Got.Ok) << What;
  EXPECT_EQ(Ref.R.Reason, Got.R.Reason)
      << What << " on " << tierName(Tier) << ": " << Got.R.Message;
  EXPECT_EQ(Ref.R.ExitCode, Got.R.ExitCode) << What << " on " << tierName(Tier);
  EXPECT_EQ(Ref.R.Instructions, Got.R.Instructions)
      << What << " on " << tierName(Tier);
  EXPECT_EQ(Ref.R.Message, Got.R.Message) << What << " on " << tierName(Tier);
  EXPECT_EQ(Ref.Output, Got.Output) << What << " on " << tierName(Tier);
}

TierRun runOnTier(const std::vector<std::string> &Sources, BuildSpec Spec,
                  ExecTier Tier, uint64_t Fuel = ~0ull) {
  Spec.Tier = Tier;
  BuiltProgram BP = buildProgram(Sources, Spec);
  EXPECT_TRUE(BP.Ok) << BP.Error;
  if (!BP.Ok)
    return {};
  Measured M = measureRun(BP, Fuel);
  return {M.Result, M.Output, true};
}

void expectTierInvariant(const std::vector<std::string> &Sources,
                         const BuildSpec &Spec, const std::string &What,
                         uint64_t Fuel = ~0ull) {
  TierRun Ref = runOnTier(Sources, Spec, ExecTier::Interpreter, Fuel);
  for (ExecTier Tier : {ExecTier::Threaded, ExecTier::Trace})
    expectIdentical(Ref, runOnTier(Sources, Spec, Tier, Fuel), Tier, What);
}

//===----------------------------------------------------------------------===//
// Program corpus: every syscall family, traps, and CFI stops
//===----------------------------------------------------------------------===//

TEST(TierDiff, ProgramCorpusIsTierInvariant) {
  const std::pair<const char *, const char *> Corpus[] = {
      {"hot-indirect", R"(
        long w0(long x) { return x + 1; }
        long w1(long x) { return x * 3; }
        long (*tab[2])(long);
        int main() {
          tab[0] = w0;
          tab[1] = w1;
          long acc = 0;
          long i;
          for (i = 0; i < 20000; i = i + 1) acc = acc + tab[i & 1](i);
          print_int(acc & 65535);
          return 0;
        }
      )"},
      {"recursion-stack", R"(
        long fib(long n) {
          if (n < 2) return n;
          return fib(n - 1) + fib(n - 2);
        }
        int main() { print_int(fib(18)); return 0; }
      )"},
      {"setjmp-longjmp", R"(
        long buf[4];
        int main() {
          long r = setjmp(buf);
          print_int(r);
          if (r < 3) longjmp(buf, r + 1);
          return (int)r;
        }
      )"},
      {"signals", R"(
        void inner(int s) { print_str("inner\n"); }
        void outer(int s) {
          signal(2, inner);
          raise(2);
          print_str("outer\n");
        }
        int main() {
          signal(1, outer);
          raise(1);
          print_str("main\n");
          return 0;
        }
      )"},
      {"malloc-strings", R"(
        int main() {
          long *p = (long *)malloc(64);
          long i;
          for (i = 0; i < 8; i = i + 1) p[i] = i * i;
          long acc = 0;
          for (i = 0; i < 8; i = i + 1) acc = acc + p[i];
          print_int(acc);
          return (int)(acc & 7);
        }
      )"},
      {"div-trap", R"(
        int main() {
          long z = 0;
          long i;
          for (i = 0; i < 500; i = i + 1) z = z + i;
          print_int(100 / (z - 124750)); /* divides by zero */
          return 1;
        }
      )"},
      {"wx-trap", R"(
        int main() {
          long *code = (long *)65536;
          *code = 42; /* store into the code region faults */
          return 1;
        }
      )"},
      {"cfi-violation", R"(
        typedef long (*Fn)(long);
        long victim(char *s) { return (long)s; }
        Fn p = (Fn)victim;
        int main() { print_int(p(5)); return 0; }
      )"},
  };

  for (const auto &[Name, Source] : Corpus) {
    BuildSpec Spec;
    Spec.LinkRtLibrary = false;
    expectTierInvariant({Source}, Spec, Name);
    // Fuel exhaustion must land on the same instruction boundary (the
    // trace tier refuses to enter a trace it cannot fully retire).
    expectTierInvariant({Source}, Spec, std::string(Name) + "/fuel-5000",
                        5000);
    expectTierInvariant({Source}, Spec, std::string(Name) + "/fuel-4999",
                        4999);
  }
}

TEST(TierDiff, WorkloadProfilesAreTierInvariant) {
  // The first SPEC-shaped profiles, scaled down: full Fig. 5 runs are
  // the bench's job, identity across tiers is this test's.
  unsigned Count = 0;
  for (BenchProfile P : specProfiles()) {
    if (++Count > 4)
      break;
    P.WorkIterations = 300;
    for (bool Instrument : {true, false}) {
      std::string Source = generateWorkload(P, WorkloadVariant::Fixed);
      BuildSpec Spec;
      Spec.Instrument = Instrument;
      expectTierInvariant({Source}, Spec,
                          P.Name + (Instrument ? "/mcfi" : "/base"));
    }
  }
}

TEST(TierDiff, OptimizedRewritingIsTierInvariant) {
  // --optimize reorders the Bary/Tary reads of the check sequence; the
  // fused-TxCheck recognizer accepts both orders and must stay
  // result-identical with the interpreter on the rewritten code.
  const char *Source = R"(
    long w0(long x) { return x + 1; }
    long w1(long x) { return x * 2; }
    long (*tab[2])(long);
    int main() {
      tab[0] = w0;
      tab[1] = w1;
      long acc = 0;
      long i;
      for (i = 0; i < 10000; i = i + 1) acc = acc + tab[i & 1](i);
      print_int(acc);
      return 0;
    }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  Spec.Optimize = true;
  expectTierInvariant({Source}, Spec, "optimized-checks");
}

//===----------------------------------------------------------------------===//
// Attack corpus: mid-run corruption, identical verdicts per tier
//===----------------------------------------------------------------------===//

const char *AttackVictimSource = R"(
  long benign(long x) { return x + 1; }
  long benign2(long x) { return x + 2; }
  long same_type_other(long x) { return x * 2; }
  long wrong_type(long a, long b) { return a * b; }
  long (*hook)(long) = benign;
  long (*spare)(long) = same_type_other;
  long (*wrong)(long, long) = wrong_type;
  int main() {
    long acc = 0;
    long i;
    for (i = 0; i < 200000; i = i + 1) acc = acc + hook(i);
    print_int(acc & 65535);
    return 0;
  }
)";

/// Runs the victim to the 50k-instruction mark, corrupts `hook` with the
/// target function \p TargetName (+ \p TargetOffset), and runs to the
/// end. All tiers see the identical machine state at the corruption
/// point, so the verdict tuple must match exactly.
TierRun attackOnTier(ExecTier Tier, const std::string &TargetName,
                     uint64_t TargetOffset) {
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  Spec.Tier = Tier;
  BuiltProgram BP = buildProgram({AttackVictimSource}, Spec);
  EXPECT_TRUE(BP.Ok) << BP.Error;
  if (!BP.Ok)
    return {};
  uint64_t HookAddr = 0;
  for (const MappedModule &Mod : BP.M->modules()) {
    auto It = Mod.Obj->DataSymbols.find("hook");
    if (It != Mod.Obj->DataSymbols.end())
      HookAddr = Mod.DataBase + It->second;
  }
  EXPECT_NE(HookAddr, 0u);
  Thread T;
  EXPECT_TRUE(BP.M->makeThread("_start", T));
  RunResult Mid = BP.M->run(T, 50'000);
  EXPECT_EQ(Mid.Reason, StopReason::OutOfFuel) << Mid.Message;
  EXPECT_TRUE(
      BP.M->store(HookAddr, 8, BP.M->findFunction(TargetName) + TargetOffset));
  TierRun Out;
  Out.R = BP.M->run(T, ~0ull);
  Out.Output = BP.M->takeOutput();
  Out.Ok = true;
  return Out;
}

TEST(TierDiff, AttackCorpusIsTierInvariant) {
  const std::tuple<const char *, const char *, uint64_t, StopReason> Cases[] =
      {
          {"mid-instruction", "benign2", 3, StopReason::CfiViolation},
          {"wrong-type", "wrong_type", 0, StopReason::CfiViolation},
          {"same-type-swap", "same_type_other", 0, StopReason::Exited},
      };
  for (const auto &[What, Target, Off, Expected] : Cases) {
    TierRun Ref = attackOnTier(ExecTier::Interpreter, Target, Off);
    ASSERT_TRUE(Ref.Ok);
    EXPECT_EQ(Ref.R.Reason, Expected) << What << ": " << Ref.R.Message;
    for (ExecTier Tier : {ExecTier::Threaded, ExecTier::Trace})
      expectIdentical(Ref, attackOnTier(Tier, Target, Off), Tier, What);
  }
}

//===----------------------------------------------------------------------===//
// Trace invalidation during dlopen
//===----------------------------------------------------------------------===//

std::string tierPluginSource(int I) {
  std::string N = std::to_string(I);
  return "long tier" + N + "_a(long x) { return x + " + N + "; }\n" +
         "long tier" + N + "_drive(long v) {\n" +
         "  long (*f)(long);\n" +
         "  f = tier" + N + "_a;\n" +
         "  return f(v);\n}\n";
}

std::vector<MCFIObject> compilePlugins(int Count) {
  std::vector<MCFIObject> Plugins;
  for (int I = 0; I != Count; ++I) {
    CompileOptions CO;
    CO.ModuleName = "tier" + std::to_string(I);
    CO.TailCalls = false;
    CompileResult CR = compileModule(tierPluginSource(I), CO);
    EXPECT_TRUE(CR.Ok) << "plugin " << I;
    Plugins.push_back(std::move(CR.Obj));
  }
  return Plugins;
}

const char *SlicedWorkerSource = R"(
  long w0(long x) { return x + 1; }
  long w1(long x) { return x * 2; }
  long (*tab[2])(long);
  long worker(long iters) {
    tab[0] = w0;
    tab[1] = w1;
    long acc = 0;
    long i;
    for (i = 0; i < iters; i = i + 1) acc = acc + tab[i & 1](i);
    exit((int)(acc & 127));
    return acc;
  }
  int main() { return 0; }
)";

/// Seeded interleaving fuzz: run the hot worker in pseudo-random fuel
/// slices, injecting a dlopen (code-epoch bump, segment + trace
/// invalidation) at seeded slice boundaries. The slice schedule is a
/// pure function of the seed, so the final RunResult must be identical
/// on every tier even though the trace tier keeps recompiling.
TierRun runSlicedWithDlopen(ExecTier Tier, uint64_t Seed,
                            const std::vector<MCFIObject> &Plugins) {
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  Spec.Tier = Tier;
  BuiltProgram BP = buildProgram({SlicedWorkerSource}, Spec);
  EXPECT_TRUE(BP.Ok) << BP.Error;
  if (!BP.Ok)
    return {};
  for (const MCFIObject &P : Plugins)
    BP.L->registerLibrary(P);

  Thread T;
  EXPECT_TRUE(BP.M->makeThread("worker", T));
  T.Regs[visa::RegArg0] = 6000;

  std::mt19937_64 Rng(Seed);
  size_t NextLib = 0;
  TierRun Out;
  while (true) {
    uint64_t Slice = 1 + Rng() % 97;
    Out.R = BP.M->run(T, Slice);
    if (Out.R.Reason != StopReason::OutOfFuel)
      break;
    if (Rng() % 4 == 0 && NextLib < Plugins.size())
      BP.L->dlopenBatch({static_cast<int64_t>(NextLib++)});
  }
  Out.Output = BP.M->takeOutput();
  Out.Ok = true;
  return Out;
}

TEST(TierDiff, DlopenInvalidationFuzzIsTierInvariant) {
  std::vector<MCFIObject> Plugins = compilePlugins(12);
  for (uint64_t Seed : {1ull, 7ull, 42ull}) {
    TierRun Ref = runSlicedWithDlopen(ExecTier::Interpreter, Seed, Plugins);
    ASSERT_TRUE(Ref.Ok);
    EXPECT_EQ(Ref.R.Reason, StopReason::Exited) << Ref.R.Message;
    for (ExecTier Tier : {ExecTier::Threaded, ExecTier::Trace})
      expectIdentical(Ref, runSlicedWithDlopen(Tier, Seed, Plugins), Tier,
                      "dlopen-fuzz/seed-" + std::to_string(Seed));
  }
}

TEST(TierDiff, ConcurrentDlopenDuringTraceExecution) {
  // Live invalidation: a guest thread hot enough to be running traces
  // races dlopenBatch bumping the code epoch. The worker must finish
  // cleanly (traces re-checked out at block boundaries, sealed bytes
  // immutable) and every load must succeed.
  std::vector<MCFIObject> Plugins = compilePlugins(12);
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  Spec.Tier = ExecTier::Trace;
  BuiltProgram BP = buildProgram({SlicedWorkerSource}, Spec);
  ASSERT_TRUE(BP.Ok) << BP.Error;
  for (const MCFIObject &P : Plugins)
    BP.L->registerLibrary(P);

  // Warm the worker up synchronously so its hot loop is compiled to a
  // trace before the first dlopen: the invalidation then provably drops
  // live traces instead of racing an empty cache.
  Thread T;
  ASSERT_TRUE(BP.M->makeThread("worker", T));
  T.Regs[visa::RegArg0] = 400000;
  RunResult Warm = BP.M->run(T, 20'000);
  ASSERT_EQ(Warm.Reason, StopReason::OutOfFuel) << Warm.Message;
  ASSERT_GT(BP.M->vmStats().TracesCompiled, 0u);

  std::atomic<int> BadHandles{0};
  std::atomic<bool> CleanExit{false};
  std::thread Guest([&] {
    RunResult R = BP.M->run(T, ~0ull);
    CleanExit.store(R.Reason == StopReason::Exited);
  });
  std::thread Loader([&] {
    for (size_t I = 0; I != Plugins.size(); ++I)
      for (const DlopenResult &D :
           BP.L->dlopenBatch({static_cast<int64_t>(I)}))
        if (D.Handle < 0)
          BadHandles.fetch_add(1);
  });
  Loader.join();
  Guest.join();
  EXPECT_TRUE(CleanExit.load());
  EXPECT_EQ(BadHandles.load(), 0) << BP.L->lastError();

  VMTierStats S = BP.M->vmStats();
  EXPECT_GT(S.TraceInstrs, 0u) << "worker never reached the trace tier";
  EXPECT_GE(S.TracesInvalidated, 1u) << "dlopen never dropped a live trace";
  EXPECT_GE(S.SegmentsBuilt, 2u) << "segment never rebuilt after dlopen";
}

//===----------------------------------------------------------------------===//
// Tier accounting sanity
//===----------------------------------------------------------------------===//

TEST(TierDiff, StatsAttributeInstructionsToTheRightTier) {
  const char *Source = R"(
    long w(long x) { return x + 1; }
    long (*f)(long) = w;
    int main() {
      long acc = 0;
      long i;
      for (i = 0; i < 5000; i = i + 1) acc = acc + f(i);
      print_int(acc & 1023);
      return 0;
    }
  )";
  for (ExecTier Tier : AllTiers) {
    BuildSpec Spec;
    Spec.LinkRtLibrary = false;
    Spec.Tier = Tier;
    BuiltProgram BP = buildProgram({Source}, Spec);
    ASSERT_TRUE(BP.Ok) << BP.Error;
    Measured M = measureRun(BP);
    ASSERT_EQ(M.Result.Reason, StopReason::Exited) << M.Result.Message;
    VMTierStats S = BP.M->vmStats();
    uint64_t Credited =
        S.InterpInstrs + S.ThreadedInstrs + S.TraceInstrs;
    EXPECT_EQ(Credited, M.Result.Instructions) << tierName(Tier);
    switch (Tier) {
    case ExecTier::Interpreter:
      EXPECT_EQ(S.ThreadedInstrs + S.TraceInstrs, 0u);
      EXPECT_EQ(S.FusedChecks, 0u);
      break;
    case ExecTier::Threaded:
      EXPECT_GT(S.ThreadedInstrs, 0u);
      EXPECT_EQ(S.TraceInstrs, 0u);
      EXPECT_GT(S.FusedChecks, 0u) << "instrumented hot loop never fused";
      break;
    case ExecTier::Trace:
      EXPECT_GT(S.TraceInstrs, 0u) << "hot loop never promoted to a trace";
      EXPECT_GT(S.TraceHits, 0u);
      EXPECT_GT(S.TracesCompiled, 0u);
      break;
    }
  }
}

} // namespace
