file(REMOVE_RECURSE
  "libmcfi_runtime.a"
)
