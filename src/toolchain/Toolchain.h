//===- toolchain/Toolchain.h - The MCFI compilation toolchain ---*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public driver API — the equivalent of the paper's toolchain
/// (Sec. 7): compile a MiniC translation unit into a separately
/// instrumented MCFI module, link modules into a Machine, and run the
/// result. This is the API the examples and benchmarks use.
///
/// Typical use:
/// \code
///   auto Main = mcfi::compileModule(Source, {.ModuleName = "main"});
///   auto Lib  = mcfi::compileModule(LibSrc, {.ModuleName = "lib"});
///   mcfi::Machine M;
///   mcfi::Linker L(M);
///   std::string Err;
///   L.linkProgram({std::move(Main.Obj), std::move(Lib.Obj)}, Err);
///   mcfi::RunResult R = mcfi::runProgram(M);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_TOOLCHAIN_TOOLCHAIN_H
#define MCFI_TOOLCHAIN_TOOLCHAIN_H

#include "linker/Linker.h"
#include "minic/AST.h"
#include "module/MCFIObject.h"
#include "runtime/Machine.h"

#include <memory>
#include <string>
#include <vector>

namespace mcfi {

struct CompileOptions {
  std::string ModuleName = "module";
  /// Apply the MCFI rewriter. Off = the unprotected baseline used by the
  /// overhead experiments.
  bool Instrument = true;
  /// Synthesize instrumented PLT entries and GOT slots for imports
  /// (needed when the module's imports will be resolved by dlopen).
  bool EmitPlt = false;
  /// Tail-call optimization ("x86-64 mode" of Table 3).
  bool TailCalls = true;
  /// Footnote-1 ablation: align targets with an extra and instead of
  /// relying on reserved-bit validation.
  bool MaskAlignTargets = false;
  /// Scheduler-friendly instrumentation (shared sandbox masks, reordered
  /// ID loads). The output does not match the syntactic verifier's byte
  /// templates and verifies only under the semantic tier.
  bool Optimize = false;
};

struct CompileResult {
  bool Ok = false;
  MCFIObject Obj;
  std::vector<std::string> Errors;
  /// The type-checked AST, kept alive for the C1/C2 analyzer.
  std::unique_ptr<minic::Program> Prog;
};

/// Compiles one MiniC translation unit into an MCFI module.
CompileResult compileModule(const std::string &Source,
                            const CompileOptions &Opts = CompileOptions());

/// Convenience: creates the "_start" thread and runs it to completion.
/// Output printed by the guest is in Machine::takeOutput().
RunResult runProgram(Machine &M, uint64_t Fuel = ~0ull);

} // namespace mcfi

#endif // MCFI_TOOLCHAIN_TOOLCHAIN_H
