file(REMOVE_RECURSE
  "libmcfi_tables.a"
)
