# Empty dependencies file for mcfi-run.
# This may be replaced when dependencies are built.
