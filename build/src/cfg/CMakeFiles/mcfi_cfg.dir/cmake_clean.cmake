file(REMOVE_RECURSE
  "CMakeFiles/mcfi_cfg.dir/CFGGen.cpp.o"
  "CMakeFiles/mcfi_cfg.dir/CFGGen.cpp.o.d"
  "CMakeFiles/mcfi_cfg.dir/SigMatch.cpp.o"
  "CMakeFiles/mcfi_cfg.dir/SigMatch.cpp.o.d"
  "libmcfi_cfg.a"
  "libmcfi_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfi_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
