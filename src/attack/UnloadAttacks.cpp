//===- attack/UnloadAttacks.cpp - dlclose-lifecycle attacks ---------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attacks on the module-unload lifecycle, driven through a full
/// Machine+Linker per tier (the builtin victim plus its registered
/// plugin, the same pair the code-epoch-replay class uses):
///
///  - retired-dispatch: the plugin is dlclosed but its grace period has
///    not elapsed — the region is still mapped, only the tables were
///    scrubbed by the retire transaction. A hijack into it must die at
///    the check (zeroed Bary/Tary), proving a check against a condemned
///    module classifies CaughtByCheck and never consults dying state.
///  - preclose-replay: the dispatch pointer is bound to the plugin while
///    that edge is LEGAL (an in-class bind), then the plugin is
///    dlclosed. Replaying the formerly-legal edge must die: retirement
///    revokes edges, not just future binds.
///  - aba-reuse: a Tary ID snapshotted pre-close (a stalled checker's
///    register image) must not validate into a successor instance
///    dlopen'd during the grace period. The condemned-ECN guard forces
///    the reopen through a full version-bumping rebuild exactly because
///    the dying class number would otherwise re-enter the tables while
///    stale snapshots may still be live.
///
//===----------------------------------------------------------------------===//

#include "attack/AttackInternal.h"

#include "tables/ID.h"
#include "toolchain/Toolchain.h"

#include <algorithm>

using namespace mcfi;
using namespace mcfi::attack;

namespace {

constexpr uint64_t AttackFuel = 20'000'000;

AttackRecord makeRecord(ExecTier Tier, const std::string &Victim,
                        const std::string &Name, Verdict V,
                        const std::string &Detail) {
  AttackRecord R;
  R.Class = AttackClass::Unload;
  R.Tier = Tier;
  R.Victim = Victim;
  R.Name = Name;
  R.Expect = Expectation::Killed;
  R.V = V;
  R.Detail = Detail;
  return R;
}

/// Address of the victim's `hook` dispatch slot (0 if absent).
uint64_t findHookSlot(const Machine &M) {
  for (const MappedModule &Mod : M.modules()) {
    auto It = Mod.Obj->DataSymbols.find("hook");
    if (It != Mod.Obj->DataSymbols.end())
      return Mod.DataBase + It->second;
  }
  return 0;
}

/// Classifies the post-hijack run. The corruption sits on the victim's
/// hot dispatch path, so a clean exit means the hijack was consumed and
/// survived; there is no unreachable case here.
Verdict classifyHijack(const RunResult &R) {
  switch (R.Reason) {
  case StopReason::CfiViolation:
    return Verdict::CaughtByCheck;
  case StopReason::Trap:
    if (R.Message.find("W^X") != std::string::npos ||
        R.Message.find("fetch from unmapped") != std::string::npos ||
        R.Message.find("invalid instruction") != std::string::npos)
      return Verdict::CaughtByMask;
    return Verdict::Trapped;
  case StopReason::Exited:
  case StopReason::OutOfFuel:
    return Verdict::Survived;
  }
  return Verdict::Survived;
}

/// Shared setup: builtin victim + plugin, dlopen'd, with the plugin's
/// in-class export resolved while it is still visible.
struct UnloadSetup {
  VictimBuild W;
  uint64_t HookAddr = 0;
  uint64_t PlugFn = 0;
  int64_t Handle = -1;
  bool Ok = false;
  std::string Error;
};

UnloadSetup setUp(ExecTier Tier) {
  UnloadSetup S;
  S.W = buildVictim(builtinVictim(), Tier, 0, false);
  if (!S.W.BP.Ok) {
    S.Error = "victim build failed: " + S.W.BP.Error;
    return S;
  }
  S.HookAddr = findHookSlot(*S.W.BP.M);
  if (!S.HookAddr) {
    S.Error = "victim has no hook slot";
    return S;
  }
  S.Handle = S.W.BP.L->dlopen(0);
  if (S.Handle < 0) {
    S.Error = "plugin dlopen failed: " + S.W.BP.L->lastError();
    return S;
  }
  S.PlugFn = S.W.BP.M->findFunction("plug_same");
  if (!S.PlugFn) {
    S.Error = "plug_same not found after dlopen";
    return S;
  }
  S.Ok = true;
  return S;
}

/// Hijack into a retired-but-not-reclaimed module: the slot is written
/// AFTER dlclose, while the region still awaits its grace period.
AttackRecord retiredDispatch(ExecTier Tier, const std::string &Victim) {
  UnloadSetup S = setUp(Tier);
  if (!S.Ok)
    return makeRecord(Tier, Victim, "unload:retired-dispatch",
                      Verdict::Survived, S.Error);
  Machine &M = *S.W.BP.M;
  if (!S.W.BP.L->dlcloseOne(S.Handle))
    return makeRecord(Tier, Victim, "unload:retired-dispatch",
                      Verdict::Survived, "dlclose refused the handle");
  if (!M.reclaimPending())
    return makeRecord(Tier, Victim, "unload:retired-dispatch",
                      Verdict::Survived,
                      "region reclaimed before the dispatch: no window");
  M.store(S.HookAddr, 8, S.PlugFn);
  RunResult R = M.run(S.W.T, AttackFuel);
  Verdict V = classifyHijack(R);
  return makeRecord(Tier, Victim, "unload:retired-dispatch", V,
                    "retired region still mapped; run: " + R.Message);
}

/// A pre-close in-class bind replayed after dlclose: the edge was legal
/// when installed, and retirement must revoke it.
AttackRecord precloseReplay(ExecTier Tier, const std::string &Victim) {
  UnloadSetup S = setUp(Tier);
  if (!S.Ok)
    return makeRecord(Tier, Victim, "unload:preclose-replay",
                      Verdict::Survived, S.Error);
  Machine &M = *S.W.BP.M;
  // Bind while legal: plug_same shares hook's signature, so this is the
  // in-class transfer the policy would allow if the module stayed.
  M.store(S.HookAddr, 8, S.PlugFn);
  if (!S.W.BP.L->dlcloseOne(S.Handle))
    return makeRecord(Tier, Victim, "unload:preclose-replay",
                      Verdict::Survived, "dlclose refused the handle");
  RunResult R = M.run(S.W.T, AttackFuel);
  Verdict V = classifyHijack(R);
  return makeRecord(Tier, Victim, "unload:preclose-replay", V,
                    "formerly-legal edge replayed; run: " + R.Message);
}

/// dlclose/dlopen ABA: a Tary ID snapshotted before the close must not
/// validate against any word the successor instance installs during the
/// grace period (same ECN + same version half would let a stalled
/// checker pass into the new module's code).
AttackRecord abaReuse(ExecTier Tier, const std::string &Victim) {
  UnloadSetup S = setUp(Tier);
  if (!S.Ok)
    return makeRecord(Tier, Victim, "unload:aba-reuse", Verdict::Survived,
                      S.Error);
  Machine &M = *S.W.BP.M;
  uint32_t Stale = M.tables().taryRead(S.PlugFn - Machine::CodeBase);
  if (!isValidID(Stale))
    return makeRecord(Tier, Victim, "unload:aba-reuse", Verdict::Survived,
                      "setup: plugin export has no Tary ID");
  if (!S.W.BP.L->dlcloseOne(S.Handle))
    return makeRecord(Tier, Victim, "unload:aba-reuse", Verdict::Survived,
                      "dlclose refused the handle");

  // Reopen during the grace period: the retired instance's class number
  // is condemned, so this install must take the full version-bumping
  // rebuild, not the incremental no-bump path.
  int64_t H2 = S.W.BP.L->dlopen(0);
  if (H2 < 0)
    return makeRecord(Tier, Victim, "unload:aba-reuse", Verdict::Survived,
                      "reopen during grace failed: " +
                          S.W.BP.L->lastError());
  uint64_t NewBase = M.modules()[static_cast<size_t>(H2)].CodeBase;
  uint64_t NewEnd = NewBase + M.modules()[static_cast<size_t>(H2)].CodeSize;
  for (uint64_t A = NewBase; A < NewEnd; A += 4) {
    uint32_t Now = M.tables().taryRead(A - Machine::CodeBase);
    if (isValidID(Now) && sameVersionHalf(Stale, Now) &&
        idECN(Now) == idECN(Stale))
      return makeRecord(Tier, Victim, "unload:aba-reuse", Verdict::Survived,
                        "pre-close ID snapshot validates into the "
                        "successor instance");
  }
  return makeRecord(Tier, Victim, "unload:aba-reuse", Verdict::CaughtByCheck,
                    "condemned-ECN guard bumped the version: stale "
                    "snapshot matches nothing in the successor");
}

} // namespace

std::vector<AttackRecord>
mcfi::attack::runUnloadAttacks(ExecTier Tier, const std::string &Victim,
                               unsigned MaxPerClass) {
  using Synth = AttackRecord (*)(ExecTier, const std::string &);
  static const Synth List[] = {retiredDispatch, precloseReplay, abaReuse};
  constexpr unsigned N = sizeof(List) / sizeof(List[0]);
  std::vector<AttackRecord> Out;
  for (unsigned I = 0; I != N && I != MaxPerClass; ++I)
    Out.push_back(List[I](Tier, Victim));
  return Out;
}
