//===- runtime/Trace.h - Hot-block trace cache ------------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace tier. A Trace is a compiled hot basic block: the
/// straight-line run of predecoded handlers from a hot entry PC up to
/// and including its first control transfer (branch, indirect transfer,
/// syscall, hlt, or a fused TxCheck group). Executing a trace skips all
/// per-instruction stream navigation and fuel checks — the engine
/// pre-verifies Fuel >= Cost so instruction accounting stays exact.
///
/// The cache is per-Machine and shared by all guest threads. dlopen and
/// seal bump the machine's code epoch and drop every cached segment and
/// trace (Machine::noteCodeChanged), so a predecoding from one layout
/// generation can never be *installed* for the next; running engines
/// re-checkout on the next block boundary. Because sealed code is
/// immutable and append-only, a trace still being executed over a
/// shared_ptr it checked out earlier remains valid byte-for-byte — the
/// invalidation is what keeps the cache coherent with table/layout
/// growth, not a use-after-free guard.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_RUNTIME_TRACE_H
#define MCFI_RUNTIME_TRACE_H

#include "runtime/Dispatch.h"

#include <memory>
#include <mutex>
#include <unordered_map>

namespace mcfi {

/// One compiled step. Fn executes D->I per the Step.h contract; a null
/// Fn marks the fused TxCheck terminator (executed by the fused-group
/// handler in Dispatch.cpp).
struct TraceStep {
  OpFn Fn;
  const DInstr *D;
};

struct Trace {
  uint64_t EntryPC = 0;
  uint32_t Cost = 0; ///< instructions one full execution retires
  std::vector<TraceStep> Steps;
  /// Owns the DInstrs the steps point into.
  std::shared_ptr<const DecodedSegment> Seg;
};

/// Per-Machine cache of the current DecodedSegment and compiled traces.
class TraceCache {
public:
  /// Longest trace, in instructions (a basic block rarely gets close;
  /// this only bounds degenerate straight-line code).
  static constexpr size_t MaxTraceLen = 256;

  /// Returns the segment for the machine's current sealed prefix,
  /// building (and caching) it if the prefix or epoch moved. Null when
  /// no code is sealed.
  std::shared_ptr<const DecodedSegment> segment(Machine &M);

  /// Returns the trace entered at Stream[Idx], compiling it on first
  /// request.
  std::shared_ptr<const Trace>
  lookupOrCompile(Machine &M, const std::shared_ptr<const DecodedSegment> &S,
                  int32_t Idx);

  /// Drops all cached predecodings and traces (code layout changed).
  void invalidate(Machine &M);

private:
  std::mutex Mu;
  std::shared_ptr<const DecodedSegment> Seg;
  std::unordered_map<uint64_t, std::shared_ptr<const Trace>> Traces;
};

} // namespace mcfi

#endif // MCFI_RUNTIME_TRACE_H
