//===- metrics/Harness.cpp - Build-and-run experiment harness -------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Harness.h"

#include <chrono>

using namespace mcfi;

BuiltProgram mcfi::buildProgram(const std::vector<std::string> &Sources,
                                const BuildSpec &Spec) {
  BuiltProgram BP;

  std::vector<MCFIObject> Objs;
  std::vector<std::unique_ptr<minic::Program>> Progs; // kept for MLTA
  std::vector<FlowModule> FlowMods;
  auto keepForAnalysis = [&](CompileResult &CR, const std::string &Name) {
    if (!Spec.Mlta || !CR.Prog)
      return;
    FlowMods.push_back({CR.Prog.get(), Name});
    Progs.push_back(std::move(CR.Prog));
  };
  for (size_t I = 0; I != Sources.size(); ++I) {
    CompileOptions CO;
    CO.ModuleName = "tu" + std::to_string(I);
    CO.Instrument = Spec.Instrument;
    CO.TailCalls = Spec.TailCalls;
    CO.Optimize = Spec.Optimize;
    CompileResult CR = compileModule(Sources[I], CO);
    if (!CR.Ok) {
      BP.Error = CR.Errors.empty() ? "compile failed" : CR.Errors.front();
      return BP;
    }
    keepForAnalysis(CR, CO.ModuleName);
    Objs.push_back(std::move(CR.Obj));
  }
  if (Spec.LinkRtLibrary) {
    CompileOptions CO;
    CO.ModuleName = "rt";
    CO.Instrument = Spec.Instrument;
    CO.TailCalls = Spec.TailCalls;
    CO.Optimize = Spec.Optimize;
    CompileResult CR = compileModule(runtimeLibrarySource(), CO);
    if (!CR.Ok) {
      BP.Error = "rt library: " +
                 (CR.Errors.empty() ? "compile failed" : CR.Errors.front());
      return BP;
    }
    keepForAnalysis(CR, CO.ModuleName);
    Objs.push_back(std::move(CR.Obj));
  }
  if (Spec.Mlta)
    for (size_t I = 0; I != Spec.ExtraAnalysisSources.size(); ++I) {
      CompileOptions CO;
      CO.ModuleName = "dyn" + std::to_string(I);
      CO.Instrument = Spec.Instrument;
      CO.TailCalls = Spec.TailCalls;
      CO.Optimize = Spec.Optimize;
      CompileResult CR = compileModule(Spec.ExtraAnalysisSources[I], CO);
      if (!CR.Ok) {
        BP.Error = "analysis source: " +
                   (CR.Errors.empty() ? "compile failed" : CR.Errors.front());
        return BP;
      }
      keepForAnalysis(CR, CO.ModuleName); // Obj discarded: analysis only
    }

  if (Spec.Mlta) {
    BP.Mlta = std::make_unique<mlta::MltaResult>(
        mlta::analyzeLayeredTypes(FlowMods));
    BP.Refinement = std::make_unique<CFGRefinement>(
        mlta::computeMltaRefinement(*BP.Mlta));
    Progs.clear(); // refinement holds names only; the ASTs can go
    FlowMods.clear();
  }

  MachineOptions MO;
  MO.Tier = Spec.Tier;
  BP.M = std::make_unique<Machine>(MO);
  LinkOptions LO;
  LO.Verify = Spec.Instrument;
  LO.InstallPolicy = Spec.Instrument;
  LO.InstrumentBootstrap = Spec.Instrument;
  LO.Refinement = BP.Refinement.get(); // null unless Spec.Mlta
  BP.L = std::make_unique<Linker>(*BP.M, LO);
  if (!BP.L->linkProgram(std::move(Objs), BP.Error))
    return BP;

  for (const MappedModule &Mod : BP.M->modules())
    BP.CodeBytes += Mod.Obj->Code.size();
  BP.Ok = true;
  return BP;
}

Measured mcfi::measureRun(BuiltProgram &BP, uint64_t Fuel) {
  Measured M;
  auto T0 = std::chrono::steady_clock::now();
  M.Result = runProgram(*BP.M, Fuel);
  auto T1 = std::chrono::steady_clock::now();
  M.Seconds = std::chrono::duration<double>(T1 - T0).count();
  M.Output = BP.M->takeOutput();
  return M;
}

Measured mcfi::runProfile(const BenchProfile &Profile, bool Instrument,
                          std::string *OutputCheck, ExecTier Tier) {
  std::string Source =
      generateWorkload(Profile, WorkloadVariant::Fixed);
  BuildSpec Spec;
  Spec.Instrument = Instrument;
  Spec.Tier = Tier;
  BuiltProgram BP = buildProgram({Source}, Spec);
  Measured M;
  if (!BP.Ok) {
    M.Result.Reason = StopReason::Trap;
    M.Result.Message = BP.Error;
    return M;
  }
  M = measureRun(BP);
  if (OutputCheck)
    *OutputCheck = M.Output;
  return M;
}
