//===- runtime/VM.cpp - The VISA interpreter -------------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The interpreter executes instrumented (or plain) VISA bytes. Check
/// transactions run as real instructions here: TableRead/BaryRead hit the
/// shared atomic ID tables, so concurrency with a host-side TxUpdate
/// behaves exactly as in the paper's Fig. 3/4 protocol. The interpreter
/// itself enforces only the *hardware-level* rules (memory mapping, W^X,
/// decode validity); control-flow integrity comes from the instrumented
/// code reaching `hlt` when a check fails — as on real x86.
///
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "support/Assert.h"
#include "support/StringUtils.h"
#include "tables/ID.h"

using namespace mcfi;
using namespace mcfi::visa;

namespace {

RunResult stop(StopReason Reason, const Thread &T, std::string Msg = "",
               int64_t Code = 0) {
  RunResult R;
  R.Reason = Reason;
  R.ExitCode = Code;
  R.Instructions = T.Instructions;
  R.Message = std::move(Msg);
  return R;
}

} // namespace

RunResult Machine::run(Thread &T, uint64_t Fuel) {
  uint64_t &SP = T.Regs[RegSP];

  // Track how many threads are inside the interpreter so the quiescence
  // scheme (noteSyscallBoundary) knows when *every* running thread has
  // crossed a syscall boundary.
  RunningThreads.fetch_add(1, std::memory_order_acq_rel);
  struct RunningGuard {
    std::atomic<int> &C;
    ~RunningGuard() { C.fetch_sub(1, std::memory_order_acq_rel); }
  } Guard{RunningThreads};

  auto push = [&](uint64_t V) -> bool {
    SP -= 8;
    return store(SP, 8, V);
  };
  auto pop = [&](uint64_t &V) -> bool {
    if (!load(SP, 8, V))
      return false;
    SP += 8;
    return true;
  };

  while (Fuel-- != 0) {
    uint64_t PC = T.PC;
    // Fetch: the PC must lie in a *sealed* (executable) module. Unsealed
    // modules are still writable, and W^X forbids executing them.
    const uint8_t *Code = codePtr(PC, 1);
    if (!Code)
      return stop(StopReason::Trap, T,
                  formatString("fetch from unmapped address 0x%llx",
                               static_cast<unsigned long long>(PC)));
    bool Executable =
        PC - CodeBase < SealedPrefix.load(std::memory_order_acquire);
    if (!Executable) {
      // Slow path: dlopen may seal modules out of prefix order. It also
      // mutates Mapped, so walk it under the module lock.
      std::lock_guard<std::mutex> Guard(ModuleLock);
      for (const MappedModule &M : Mapped) {
        if (PC >= M.CodeBase && PC < M.CodeBase + M.Obj->Code.size()) {
          Executable = M.Sealed;
          break;
        }
      }
    }
    if (!Executable)
      return stop(StopReason::Trap, T,
                  formatString("W^X: executing unsealed code at 0x%llx",
                               static_cast<unsigned long long>(PC)));

    Instr I;
    if (!decode(CodeBytes.data(), CodeUsed.load(std::memory_order_acquire),
                PC - CodeBase, I))
      return stop(StopReason::Trap, T,
                  formatString("invalid instruction at 0x%llx",
                               static_cast<unsigned long long>(PC)));
    uint64_t Next = PC + I.Length;
    ++T.Instructions;

    uint64_t *R = T.Regs;
    switch (I.Op) {
    case Opcode::Invalid:
      mcfi_unreachable("decode accepted an invalid opcode");
    case Opcode::MovImm:
      R[I.Rd] = I.Imm;
      break;
    case Opcode::Mov:
      R[I.Rd] = R[I.Ra];
      break;
    case Opcode::Load:
    case Opcode::Load8:
    case Opcode::Load16:
    case Opcode::Load32: {
      unsigned Size = I.Op == Opcode::Load    ? 8
                      : I.Op == Opcode::Load8 ? 1
                      : I.Op == Opcode::Load16 ? 2
                                               : 4;
      uint64_t Addr = R[I.Ra] + static_cast<int64_t>(I.Off);
      uint64_t V;
      if (!load(Addr, Size, V))
        return stop(StopReason::Trap, T,
                    formatString("load fault at 0x%llx (pc 0x%llx)",
                                 static_cast<unsigned long long>(Addr),
                                 static_cast<unsigned long long>(PC)));
      R[I.Rd] = V;
      break;
    }
    case Opcode::Store:
    case Opcode::Store8:
    case Opcode::Store16:
    case Opcode::Store32: {
      unsigned Size = I.Op == Opcode::Store    ? 8
                      : I.Op == Opcode::Store8 ? 1
                      : I.Op == Opcode::Store16 ? 2
                                                : 4;
      uint64_t Addr = R[I.Rd] + static_cast<int64_t>(I.Off);
      if (!store(Addr, Size, R[I.Ra]))
        return stop(StopReason::Trap, T,
                    formatString("store fault at 0x%llx (pc 0x%llx)",
                                 static_cast<unsigned long long>(Addr),
                                 static_cast<unsigned long long>(PC)));
      break;
    }
    case Opcode::Add:
      R[I.Rd] = R[I.Ra] + R[I.Rb];
      break;
    case Opcode::Sub:
      R[I.Rd] = R[I.Ra] - R[I.Rb];
      break;
    case Opcode::Mul:
      R[I.Rd] = R[I.Ra] * R[I.Rb];
      break;
    case Opcode::DivS:
    case Opcode::ModS: {
      int64_t A = static_cast<int64_t>(R[I.Ra]);
      int64_t B = static_cast<int64_t>(R[I.Rb]);
      if (B == 0 || (A == INT64_MIN && B == -1))
        return stop(StopReason::Trap, T, "integer division fault");
      R[I.Rd] = static_cast<uint64_t>(I.Op == Opcode::DivS ? A / B : A % B);
      break;
    }
    case Opcode::And:
      R[I.Rd] = R[I.Ra] & R[I.Rb];
      break;
    case Opcode::Or:
      R[I.Rd] = R[I.Ra] | R[I.Rb];
      break;
    case Opcode::Xor:
      R[I.Rd] = R[I.Ra] ^ R[I.Rb];
      break;
    case Opcode::Shl:
      R[I.Rd] = R[I.Ra] << (R[I.Rb] & 63);
      break;
    case Opcode::ShrL:
      R[I.Rd] = R[I.Ra] >> (R[I.Rb] & 63);
      break;
    case Opcode::ShrA:
      R[I.Rd] = static_cast<uint64_t>(static_cast<int64_t>(R[I.Ra]) >>
                                      (R[I.Rb] & 63));
      break;
    case Opcode::CmpEq:
      R[I.Rd] = R[I.Ra] == R[I.Rb];
      break;
    case Opcode::CmpNe:
      R[I.Rd] = R[I.Ra] != R[I.Rb];
      break;
    case Opcode::CmpLtS:
      R[I.Rd] =
          static_cast<int64_t>(R[I.Ra]) < static_cast<int64_t>(R[I.Rb]);
      break;
    case Opcode::CmpLeS:
      R[I.Rd] =
          static_cast<int64_t>(R[I.Ra]) <= static_cast<int64_t>(R[I.Rb]);
      break;
    case Opcode::CmpLtU:
      R[I.Rd] = R[I.Ra] < R[I.Rb];
      break;
    case Opcode::CmpLeU:
      R[I.Rd] = R[I.Ra] <= R[I.Rb];
      break;
    case Opcode::Neg:
      R[I.Rd] = 0 - R[I.Ra];
      break;
    case Opcode::Not:
      R[I.Rd] = ~R[I.Ra];
      break;
    case Opcode::AndImm:
      R[I.Rd] &= I.Imm;
      break;
    case Opcode::AddImm:
      R[I.Rd] += static_cast<int64_t>(I.Off);
      break;
    case Opcode::Jmp:
      Next = Next + static_cast<int64_t>(I.Off);
      break;
    case Opcode::Jz:
      if (R[I.Ra] == 0)
        Next = Next + static_cast<int64_t>(I.Off);
      break;
    case Opcode::Jnz:
      if (R[I.Ra] != 0)
        Next = Next + static_cast<int64_t>(I.Off);
      break;
    case Opcode::JmpInd:
      Next = R[I.Ra];
      break;
    case Opcode::Call:
      if (!push(Next))
        return stop(StopReason::Trap, T, "stack overflow on call");
      Next = PC + I.Length + static_cast<int64_t>(I.Off);
      break;
    case Opcode::CallInd:
      if (!push(PC + I.Length))
        return stop(StopReason::Trap, T, "stack overflow on call");
      Next = R[I.Ra];
      break;
    case Opcode::Ret: {
      uint64_t RA;
      if (!pop(RA))
        return stop(StopReason::Trap, T, "stack underflow on ret");
      Next = RA;
      break;
    }
    case Opcode::Push:
      if (!push(R[I.Ra]))
        return stop(StopReason::Trap, T, "stack overflow on push");
      break;
    case Opcode::Pop: {
      uint64_t V;
      if (!pop(V))
        return stop(StopReason::Trap, T, "stack underflow on pop");
      R[I.Rd] = V;
      break;
    }
    case Opcode::Nop:
      break;
    case Opcode::Halt:
      T.PC = PC;
      return stop(StopReason::CfiViolation, T,
                  formatString("CFI check failed at 0x%llx",
                               static_cast<unsigned long long>(PC)));
    case Opcode::TableRead: {
      uint64_t Addr = R[I.Ra];
      R[I.Rd] = Addr >= CodeBase && Addr < CodeBase + CodeCapacity
                    ? Tables.taryRead(Addr - CodeBase)
                    : 0;
      break;
    }
    case Opcode::BaryRead:
      R[I.Rd] = Tables.baryRead(static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Syscall: {
      // A thread entering a syscall holds no in-flight check
      // transaction: the Sec. 5.2 quiescence point. Only engage the
      // bookkeeping when the version space is actually running low.
      if (Tables.versionSpaceLow())
        noteSyscallBoundary(T);
      switch (static_cast<SyscallNo>(I.Imm)) {
      case SyscallNo::Malloc:
        R[RegRet] = allocHeap(R[RegArg0]);
        break;
      case SyscallNo::Free:
        break; // bump allocator: free is a no-op
      case SyscallNo::Setjmp: {
        uint64_t Buf = R[RegArg0];
        if (!store(Buf, 8, Next) || !store(Buf + 8, 8, SP))
          return stop(StopReason::Trap, T, "setjmp buffer fault");
        R[RegRet] = 0;
        break;
      }
      case SyscallNo::Longjmp: {
        uint64_t Buf = R[RegArg0];
        uint64_t Target, SavedSP;
        if (!load(Buf, 8, Target) || !load(Buf + 8, 8, SavedSP))
          return stop(StopReason::Trap, T, "longjmp buffer fault");
        // The runtime validates the (attacker-writable) jmp_buf target
        // against the CFG's setjmp return sites (paper Sec. 6).
        if (!isSetjmpRetSite(Target)) {
          T.PC = PC;
          return stop(StopReason::CfiViolation, T,
                      "longjmp to an address that is not a setjmp return "
                      "site");
        }
        SP = SavedSP;
        uint64_t V = R[RegArg0 + 1];
        R[RegRet] = V ? V : 1;
        Next = Target;
        break;
      }
      case SyscallNo::Signal: {
        uint64_t Handler = R[RegArg0 + 1];
        // Handlers must be legitimate indirect-branch targets.
        bool Valid = Handler >= CodeBase && Handler < CodeBase + CodeCapacity &&
                     isValidID(Tables.taryRead(Handler - CodeBase));
        if (!Valid) {
          T.PC = PC;
          return stop(StopReason::CfiViolation, T,
                      "signal handler is not a valid branch target");
        }
        std::lock_guard<std::mutex> Guard(SignalLock);
        SignalHandlers[static_cast<int>(R[RegArg0])] = Handler;
        break;
      }
      case SyscallNo::Raise: {
        uint64_t Handler = 0;
        {
          std::lock_guard<std::mutex> Guard(SignalLock);
          auto It = SignalHandlers.find(static_cast<int>(R[RegArg0]));
          if (It != SignalHandlers.end())
            Handler = It->second;
        }
        if (!Handler)
          break;
        // Dispatch: the handler is entered like a call whose return goes
        // through the sigreturn trampoline (the return instruction in the
        // handler is checked against the trampoline's Tary ID).
        assert(SigReturnAddr && "no sigreturn trampoline loaded");
        T.SignalReturnStack.push_back(Next);
        if (!push(SigReturnAddr))
          return stop(StopReason::Trap, T, "stack overflow on signal");
        R[RegArg0] = R[RegArg0]; // signal number already in arg register
        Next = Handler;
        break;
      }
      case SyscallNo::SigReturn: {
        if (T.SignalReturnStack.empty())
          return stop(StopReason::Trap, T, "sigreturn without a signal");
        Next = T.SignalReturnStack.back();
        T.SignalReturnStack.pop_back();
        break;
      }
      case SyscallNo::PrintInt:
        appendOutput(
            std::to_string(static_cast<int64_t>(R[RegArg0])) + "\n");
        break;
      case SyscallNo::PrintStr:
        appendOutput(readString(R[RegArg0]));
        break;
      case SyscallNo::Exit:
        T.PC = Next;
        return stop(StopReason::Exited, T, "",
                    static_cast<int64_t>(R[RegArg0]));
      case SyscallNo::Dlopen:
        R[RegRet] = DlopenHook
                        ? static_cast<uint64_t>(DlopenHook(
                              *this, static_cast<int64_t>(R[RegArg0])))
                        : static_cast<uint64_t>(-1);
        break;
      case SyscallNo::Dlsym: {
        std::string Name = readString(R[RegArg0 + 1]);
        int64_t Handle = static_cast<int64_t>(R[RegArg0]);
        uint64_t Addr = 0;
        if (Handle >= 0 && static_cast<size_t>(Handle) < Mapped.size()) {
          if (const FunctionInfo *F =
                  Mapped[static_cast<size_t>(Handle)].Obj->findFunction(Name))
            Addr = Mapped[static_cast<size_t>(Handle)].CodeBase +
                   F->CodeOffset;
        } else {
          Addr = findFunction(Name);
        }
        R[RegRet] = Addr;
        break;
      }
      default:
        return stop(StopReason::Trap, T,
                    formatString("unknown syscall %u",
                                 static_cast<unsigned>(I.Imm)));
      }
      break;
    }
    }
    T.PC = Next;
  }
  return stop(StopReason::OutOfFuel, T, "instruction budget exhausted");
}
