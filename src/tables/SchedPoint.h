//===- tables/SchedPoint.h - Instrumentable atomic-access seam --*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SchedPoint seam: a hook invoked at every atomic load, store, RMW,
/// and fence inside the check/update transaction paths (txCheck,
/// txCheckSlow, txUpdate, txUpdateIncremental). The deterministic
/// schedule-exploration checker (src/schedcheck) uses it to gain control
/// before each shared-memory access of a logical thread — the scheduling
/// decision point — and to observe the value moved, which feeds the
/// linearizability oracle and the torn-read (reserved-bits) check.
///
/// In normal builds the hooks compile to empty inline functions, so the
/// production tables (mcfi_tables) carry zero overhead. The instrumented
/// twin library (mcfi_tables_sched) compiles the same sources with
/// MCFI_SCHED_HOOKS=1; only schedcheck binaries link it. Never link both
/// libraries into one executable.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_TABLES_SCHEDPOINT_H
#define MCFI_TABLES_SCHEDPOINT_H

#include <cstdint>

namespace mcfi {

/// The flavor of atomic access a scheduling point precedes.
enum class SchedOp : uint8_t {
  LoadRelaxed,
  LoadAcquire,
  StoreRelaxed,
  RMWRelaxed,
  RMWRelease,
  FenceAcquire,
  FenceSeqCst,
};

/// Which shared object of the table structure is accessed.
enum class SchedObject : uint8_t {
  None, ///< fences: no single object
  Tary,
  Bary,
  Version,
  UpdateSeq,
  UpdateCount,
  VersionedUpdateCount,
  EpochBase,
  SlowRetries,
  InstalledTary,
  InstalledBary,
  Reclaim, ///< epoch-reclamation pending-region counter (tables/Reclaim.h)
};

/// One instrumented access: the hook payload.
struct SchedAccess {
  SchedOp Op;
  SchedObject Obj;
  uint64_t Index; ///< element index for Tary (word) / Bary, else 0
  uint64_t Value; ///< value loaded/stored (Observe only; 0 for fences)
};

inline const char *schedOpName(SchedOp Op) {
  switch (Op) {
  case SchedOp::LoadRelaxed:
    return "load";
  case SchedOp::LoadAcquire:
    return "load.acq";
  case SchedOp::StoreRelaxed:
    return "store";
  case SchedOp::RMWRelaxed:
    return "rmw";
  case SchedOp::RMWRelease:
    return "rmw.rel";
  case SchedOp::FenceAcquire:
    return "fence.acq";
  case SchedOp::FenceSeqCst:
    return "fence.sc";
  }
  return "?";
}

inline const char *schedObjectName(SchedObject Obj) {
  switch (Obj) {
  case SchedObject::None:
    return "-";
  case SchedObject::Tary:
    return "Tary";
  case SchedObject::Bary:
    return "Bary";
  case SchedObject::Version:
    return "Version";
  case SchedObject::UpdateSeq:
    return "UpdateSeq";
  case SchedObject::UpdateCount:
    return "Updates";
  case SchedObject::VersionedUpdateCount:
    return "VersionedUpdates";
  case SchedObject::EpochBase:
    return "EpochBase";
  case SchedObject::SlowRetries:
    return "SlowRetries";
  case SchedObject::InstalledTary:
    return "InstalledTary";
  case SchedObject::InstalledBary:
    return "InstalledBary";
  case SchedObject::Reclaim:
    return "Reclaim";
  }
  return "?";
}

#if MCFI_SCHED_HOOKS

/// The active hook pair. Yield runs *before* the access — the
/// cooperative scheduler's preemption point; Observe runs *after*, with
/// the value that moved. Both null when no harness is attached.
struct SchedHooks {
  void (*Yield)(void *Ctx, const SchedAccess &A) = nullptr;
  void (*Observe)(void *Ctx, const SchedAccess &A) = nullptr;
  void *Ctx = nullptr;
};

inline SchedHooks GSchedHooks;

/// TEST-ONLY MUTANT KNOB: when set, the update transactions install the
/// Bary phase *before* the Tary phase, violating Fig. 3's store order.
/// Exists so the schedule checker can prove it would catch the torn
/// observations that order prevents (ISSUE 3 acceptance criterion).
inline bool GSchedMutantReorderPhases = false;

/// TEST-ONLY MUTANT KNOB: when set, a retiring updater skips the grace
/// period — it may run (and reuse the retired range) while a checker is
/// still mid-transaction holding pre-retire IDs. The unload scenario must
/// detect the resulting use-after-retire as a torn observation.
inline bool GSchedMutantSkipGrace = false;

inline void schedYield(SchedOp Op, SchedObject Obj, uint64_t Index) {
  if (GSchedHooks.Yield)
    GSchedHooks.Yield(GSchedHooks.Ctx, SchedAccess{Op, Obj, Index, 0});
}

inline void schedObserve(SchedOp Op, SchedObject Obj, uint64_t Index,
                         uint64_t Value) {
  if (GSchedHooks.Observe)
    GSchedHooks.Observe(GSchedHooks.Ctx, SchedAccess{Op, Obj, Index, Value});
}

#else

// Production build: the seam vanishes entirely.
inline void schedYield(SchedOp, SchedObject, uint64_t) {}
inline void schedObserve(SchedOp, SchedObject, uint64_t, uint64_t) {}

#endif // MCFI_SCHED_HOOKS

} // namespace mcfi

#endif // MCFI_TABLES_SCHEDPOINT_H
