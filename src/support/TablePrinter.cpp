//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace mcfi;

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::render() const {
  // Compute per-column widths.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();
  }

  std::string Out;
  for (size_t R = 0; R != Rows.size(); ++R) {
    const auto &Row = Rows[R];
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        Out += "  ";
      Out += C == 0 ? padRight(Row[C], Widths[C]) : padLeft(Row[C], Widths[C]);
    }
    Out += '\n';
    if (R == 0) {
      // Header separator.
      size_t Total = 0;
      for (size_t C = 0; C != Widths.size(); ++C)
        Total += Widths[C] + (C == 0 ? 0 : 2);
      Out += std::string(Total, '-');
      Out += '\n';
    }
  }
  return Out;
}

void TablePrinter::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
}
