//===- attack/TableAttacks.cpp - ID-table update-protocol attacks ---------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attacks on the check/update transaction protocol itself, run against
/// standalone IDTables instances (the same class the Machine embeds — the
/// guest's TableRead/BaryRead delegate straight to it, so a protocol hole
/// here would be a protocol hole at runtime):
///
///  - stale-version-replay: IDs snapshotted before a version-bumping
///    TxUpdate must not validate anything afterwards (Sec. 5.2's ABA
///    hazard), shrinking updates must leave no stale entries behind, and
///    the version space must refuse to wrap into replayable territory
///    without a quiescence point.
///  - torn-update: TxCheck racing full and incremental update storms
///    must never observe a torn cross-version table pair that validates
///    a never-legal edge (the linearizability claim of Fig. 3/4). These
///    are racy by construction and TSan-clean: every access goes through
///    the tables' atomics.
///
//===----------------------------------------------------------------------===//

#include "attack/AttackInternal.h"

#include "tables/ID.h"
#include "tables/IDTables.h"

#include <atomic>
#include <thread>

using namespace mcfi;
using namespace mcfi::attack;

namespace {

/// Small table shapes keep the version-wrap storm (~2^14 full rebuilds)
/// cheap: 64 Tary words and 8 Bary sites per rebuild.
constexpr uint64_t CodeCap = 1024;
constexpr uint32_t BaryCap = 8;
constexpr uint64_t TaryLimit = 256;

/// One-ECN-per-site toy policy: site I has ECN Site[I]; 4-aligned target
/// offset Off has ECN Target[Off / 4] (negative: not a target).
struct ToyPolicy {
  std::vector<int64_t> Site;
  std::vector<int64_t> Target; // indexed by Tary word

  TxUpdateStatus install(IDTables &T) const {
    return T.txUpdate(
        TaryLimit, [this](uint64_t Off) { return Target[Off / 4]; },
        static_cast<uint32_t>(Site.size()),
        [this](uint32_t I) { return Site[I]; });
  }
};

AttackRecord makeRecord(AttackClass Class, ExecTier Tier,
                        const std::string &Victim, const std::string &Name,
                        Verdict V, const std::string &Detail) {
  AttackRecord R;
  R.Class = Class;
  R.Tier = Tier;
  R.Victim = Victim;
  R.Name = Name;
  R.Expect = Expectation::Killed;
  R.V = V;
  R.Detail = Detail;
  return R;
}

/// Replay of an edge the new CFG removed: snapshot the target ID under
/// policy A, install policy B without the target, and emulate the
/// stalled check transaction holding the stale ID.
AttackRecord staleRemovedEdgeReplay(ExecTier Tier, const std::string &Victim) {
  IDTables T(CodeCap, BaryCap);
  ToyPolicy A;
  A.Site = {5};
  A.Target.assign(TaryLimit / 4, -1);
  A.Target[16] = 5; // offset 64 is a legal target of site 0
  A.install(T);
  if (T.txCheck(0, 64) != CheckResult::Pass)
    return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                      "stale:removed-edge", Verdict::Survived,
                      "setup: legal edge did not pass");

  uint32_t StaleID = T.taryRead(64); // the attacker's snapshot
  ToyPolicy B = A;
  B.Target[16] = -1; // the new CFG removes the edge
  B.install(T);

  // The stalled check: its branch ID is re-read (current), its target ID
  // is the snapshot. Fig. 4's comparison fails on the version half, the
  // retry path re-reads the *current* tary entry — now cleared — and the
  // transfer halts with an invalid-target violation.
  bool StaleCompares = sameVersionHalf(StaleID, T.baryRead(0));
  CheckResult Retry = T.txCheck(0, 64);
  if (StaleCompares || Retry == CheckResult::Pass)
    return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                      "stale:removed-edge", Verdict::Survived,
                      "stale ID validated a removed edge");
  return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                    "stale:removed-edge", Verdict::CaughtByCheck,
                    "version half mismatch; retry: ViolationInvalid");
}

/// A shrinking update must zero entries past the new limit — otherwise
/// an old-version ID would linger at the stale offset for a later
/// same-version forgery to match.
AttackRecord staleShrinkLeftover(ExecTier Tier, const std::string &Victim) {
  IDTables T(CodeCap, BaryCap);
  ToyPolicy Big;
  Big.Site = {7};
  Big.Target.assign(TaryLimit / 4, -1);
  Big.Target[60] = 7; // offset 240, near the limit
  Big.install(T);

  // Shrink: reinstall with a quarter of the Tary extent.
  TxUpdateStatus S = T.txUpdate(
      TaryLimit / 4, [](uint64_t) { return int64_t(-1); }, 1,
      [](uint32_t) { return int64_t(7); });
  if (S != TxUpdateStatus::Ok)
    return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                      "stale:shrink-leftover", Verdict::Survived,
                      "shrink install refused");
  if (T.taryRead(240) != 0 || T.txCheck(0, 240) == CheckResult::Pass)
    return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                      "stale:shrink-leftover", Verdict::Survived,
                      "stale entry survived the shrink");
  return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                    "stale:shrink-leftover", Verdict::CaughtByCheck,
                    "stale extent zeroed; replay: ViolationInvalid");
}

/// Storm of version-bumping updates: the 14-bit version space must be
/// refused before it wraps into territory a stalled check could replay
/// (Sec. 5.2), and recover only after an explicit quiescence point.
AttackRecord staleVersionWrap(ExecTier Tier, const std::string &Victim) {
  IDTables T(CodeCap, BaryCap);
  ToyPolicy P;
  P.Site = {3};
  P.Target.assign(TaryLimit / 4, -1);
  P.Target[8] = 3;

  uint64_t Installed = 0;
  TxUpdateStatus S = TxUpdateStatus::Ok;
  // MaxVersion+1 bumps would wrap; the margin must stop the storm first.
  for (uint64_t I = 0; I <= MaxVersion + 2; ++I) {
    S = P.install(T);
    if (S != TxUpdateStatus::Ok)
      break;
    ++Installed;
  }
  if (S != TxUpdateStatus::VersionExhausted || Installed > MaxVersion)
    return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                      "stale:version-wrap", Verdict::Survived,
                      "update storm was not refused before wrap");
  // Recovery sanity: a quiescence point re-opens the version space.
  T.resetVersionEpoch();
  bool Recovered = P.install(T) == TxUpdateStatus::Ok;
  return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                    "stale:version-wrap", Verdict::UnreachableByPolicy,
                    std::string("VersionExhausted at margin; ") +
                        (Recovered ? "recovered after quiescence"
                                   : "RECOVERY FAILED"));
}

/// Cross-version ID forgery: words mixing halves of two valid IDs must
/// fail the reserved-bit validation (the misaligned-read defense).
AttackRecord staleMixedHalves(ExecTier Tier, const std::string &Victim) {
  uint32_t U = encodeID(5, 9);
  uint32_t W = encodeID(5, 10);
  uint32_t Mixed = (U & 0xffffu) | (W & 0xffff0000u);
  bool MixedInvalid = !sameVersionHalf(U, W);
  // A word assembled at a misaligned offset splices byte-shifted halves;
  // its reserved bits cannot match the 0,0,0,1 pattern.
  uint32_t Spliced = (U >> 16) | (W << 16);
  if (!MixedInvalid || isValidID(Spliced) || idECN(Mixed) != 5)
    return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                      "stale:mixed-halves", Verdict::Survived,
                      "forged cross-version word validated");
  return makeRecord(AttackClass::StaleVersionReplay, Tier, Victim,
                    "stale:mixed-halves", Verdict::CaughtByCheck,
                    "version-half compare and reserved bits both refuse");
}

/// Core torn-update probe: checker threads hammer an edge that is
/// invalid under every policy the updater installs; one Pass means a
/// torn cross-version table pair validated a never-legal edge.
template <typename UpdateStorm>
AttackRecord tornProbe(AttackClass Class, ExecTier Tier,
                       const std::string &Victim, const std::string &Name,
                       IDTables &T, uint32_t BadSite, uint64_t BadOffset,
                       const UpdateStorm &Storm) {
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Passes{0};

  std::thread Checkers[2];
  for (std::thread &C : Checkers)
    C = std::thread([&] {
      while (!Done.load(std::memory_order_acquire))
        if (T.txCheck(BadSite, BadOffset) == CheckResult::Pass)
          Passes.fetch_add(1, std::memory_order_relaxed);
      // One final check after the last update settled.
      if (T.txCheck(BadSite, BadOffset) == CheckResult::Pass)
        Passes.fetch_add(1, std::memory_order_relaxed);
    });

  Storm();
  Done.store(true, std::memory_order_release);
  for (std::thread &C : Checkers)
    C.join();

  if (Passes.load())
    return makeRecord(Class, Tier, Victim, Name, Verdict::Survived,
                      "torn table pair validated a never-legal edge");
  return makeRecord(Class, Tier, Victim, Name, Verdict::CaughtByCheck,
                    "no check passed across the update storm");
}

/// Full-rebuild flips between two policies that disagree on every ECN;
/// the probed edge is illegal under both and under any mix.
AttackRecord tornFullFlip(ExecTier Tier, const std::string &Victim) {
  IDTables T(CodeCap, BaryCap);
  ToyPolicy A, B;
  A.Site = {1, 3};
  B.Site = {2, 4};
  A.Target.assign(TaryLimit / 4, -1);
  B.Target.assign(TaryLimit / 4, -1);
  A.Target[16] = 3; // offset 64: legal only for site 1 under A
  B.Target[16] = 4; // ... and only for site 1 under B
  A.install(T);
  return tornProbe(AttackClass::TornUpdate, Tier, Victim, "torn:full-flip", T,
                   /*BadSite=*/0, /*BadOffset=*/64, [&] {
                     for (unsigned I = 0; I != 400; ++I)
                       (I & 1 ? B : A).install(T);
                   });
}

/// Incremental extension storm: additions never make the probed edge
/// legal, and each entry-write must linearize independently.
AttackRecord tornIncrementalExtend(ExecTier Tier, const std::string &Victim) {
  IDTables T(CodeCap, BaryCap);
  ToyPolicy Base;
  Base.Site = {1};
  Base.Target.assign(TaryLimit / 4, -1);
  Base.Target[4] = 1;
  Base.install(T);

  // Growing target map shared by the incremental deltas; plain vector is
  // fine — only the storm thread mutates it, the checkers see IDTables.
  std::vector<int64_t> Target = Base.Target;
  return tornProbe(
      AttackClass::TornUpdate, Tier, Victim, "torn:incremental-extend", T,
      /*BadSite=*/0, /*BadOffset=*/64, [&] {
        for (unsigned I = 0; I != 40; ++I) {
          uint64_t Word = 20 + I; // offsets 80, 84, ... all ECN 2
          Target[Word] = 2;
          std::vector<TaryRange> Dirty{{Word * 4, Word * 4 + 4}};
          T.txUpdateIncremental(
              TaryLimit, Dirty,
              [&Target](uint64_t Off) { return Target[Off / 4]; }, 1, {},
              [](uint32_t) { return int64_t(1); });
        }
      });
}

/// Grow/shrink flips move the installed Tary extent across the probed
/// offset; a torn shrink could leave its stale ID observable.
AttackRecord tornShrinkGrow(ExecTier Tier, const std::string &Victim) {
  IDTables T(CodeCap, BaryCap);
  ToyPolicy Grown;
  Grown.Site = {1, 6};
  Grown.Target.assign(TaryLimit / 4, -1);
  Grown.Target[32] = 6; // offset 128: legal only for site 1
  Grown.install(T);
  return tornProbe(AttackClass::TornUpdate, Tier, Victim, "torn:shrink-grow",
                   T, /*BadSite=*/0, /*BadOffset=*/128, [&] {
                     for (unsigned I = 0; I != 400; ++I) {
                       if (I & 1) {
                         Grown.install(T);
                       } else {
                         T.txUpdate(
                             64, [](uint64_t) { return int64_t(-1); }, 2,
                             [&Grown](uint32_t S) { return Grown.Site[S]; });
                       }
                     }
                   });
}

} // namespace

std::vector<AttackRecord>
mcfi::attack::runTableAttacks(AttackClass Class, ExecTier Tier,
                              const std::string &Victim,
                              unsigned MaxPerClass) {
  using Synth = AttackRecord (*)(ExecTier, const std::string &);
  const Synth *List = nullptr;
  unsigned N = 0;
  static const Synth Stale[] = {staleRemovedEdgeReplay, staleShrinkLeftover,
                                staleVersionWrap, staleMixedHalves};
  static const Synth Torn[] = {tornFullFlip, tornIncrementalExtend,
                               tornShrinkGrow};
  if (Class == AttackClass::StaleVersionReplay) {
    List = Stale;
    N = sizeof(Stale) / sizeof(Stale[0]);
  } else if (Class == AttackClass::TornUpdate) {
    List = Torn;
    N = sizeof(Torn) / sizeof(Torn[0]);
  }
  std::vector<AttackRecord> Out;
  for (unsigned I = 0; I != N && I != MaxPerClass; ++I)
    Out.push_back(List[I](Tier, Victim));
  return Out;
}
