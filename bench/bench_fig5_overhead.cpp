//===- bench/bench_fig5_overhead.cpp - Figure 5 reproduction --------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 5: execution-time overhead of MCFI instrumentation on the
/// SPECCPU2006-shaped benchmarks, statically linked, with NO concurrent
/// update transactions. Each benchmark runs unprotected and
/// MCFI-instrumented; we report the retired-instruction overhead (the
/// deterministic analogue of the paper's wall-clock numbers on real
/// hardware) and the VM wall-time overhead as a secondary signal.
/// Expected shape: single-digit percentages, ~4-6% average.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "metrics/Harness.h"

#include <cstdio>

using namespace mcfi;

int main() {
  benchHeader("MCFI instrumentation overhead, no concurrent updates",
              "Figure 5");

  TablePrinter Table;
  Table.addRow({"benchmark", "base instrs", "mcfi instrs", "instr overhead",
                "time overhead"});

  double SumInstr = 0, SumTime = 0;
  unsigned Count = 0;
  for (const BenchProfile &P : specProfiles()) {
    std::string OutBase, OutMCFI;
    Measured Base = runProfile(P, /*Instrument=*/false, &OutBase);
    Measured Inst = runProfile(P, /*Instrument=*/true, &OutMCFI);
    if (Base.Result.Reason != StopReason::Exited ||
        Inst.Result.Reason != StopReason::Exited) {
      std::fprintf(stderr, "%s failed: %s / %s\n", P.Name.c_str(),
                   Base.Result.Message.c_str(), Inst.Result.Message.c_str());
      return 1;
    }
    if (OutBase != OutMCFI) {
      std::fprintf(stderr, "%s: output diverged under instrumentation\n",
                   P.Name.c_str());
      return 1;
    }
    double InstrOv = 100.0 * (static_cast<double>(Inst.Result.Instructions) /
                                  static_cast<double>(
                                      Base.Result.Instructions) -
                              1.0);
    double TimeOv = 100.0 * (Inst.Seconds / Base.Seconds - 1.0);
    SumInstr += InstrOv;
    SumTime += TimeOv;
    ++Count;
    Table.addRow({P.Name, std::to_string(Base.Result.Instructions),
                  std::to_string(Inst.Result.Instructions), pct(InstrOv),
                  pct(TimeOv)});
  }
  Table.addRow({"average", "", "", pct(SumInstr / Count),
                pct(SumTime / Count)});
  Table.print();
  std::printf("\npaper: ~4-6%% average on x86-32/64 (Fig. 5)\n");
  return 0;
}
