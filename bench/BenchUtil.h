//===- bench/BenchUtil.h - Shared benchmark plumbing ------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef MCFI_BENCH_BENCHUTIL_H
#define MCFI_BENCH_BENCHUTIL_H

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <string>

namespace mcfi {

inline std::string pct(double Value) { return formatString("%.1f%%", Value); }

inline void benchHeader(const char *Title, const char *PaperRef) {
  std::printf("==============================================================="
              "=\n%s\n(reproduces %s of Niu & Tan, \"Modular Control-Flow "
              "Integrity\", PLDI 2014)\n"
              "================================================================"
              "\n",
              Title, PaperRef);
}

} // namespace mcfi

#endif // MCFI_BENCH_BENCHUTIL_H
