//===- tests/VisaTest.cpp - VISA encoding/assembly tests ------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"
#include "visa/Assembler.h"
#include "visa/ISA.h"

#include <gtest/gtest.h>

using namespace mcfi;
using namespace mcfi::visa;

namespace {

std::vector<Opcode> allOpcodes() {
  std::vector<Opcode> Ops;
  for (int B = 1; B != 256; ++B)
    if (opcodeLength(static_cast<Opcode>(B)) != 0)
      Ops.push_back(static_cast<Opcode>(B));
  return Ops;
}

TEST(ISA, EncodeDecodeRoundTripProperty) {
  RNG R(42);
  for (Opcode Op : allOpcodes()) {
    for (int Trial = 0; Trial != 200; ++Trial) {
      Instr I;
      I.Op = Op;
      I.Rd = static_cast<uint8_t>(R.below(NumRegs));
      I.Ra = static_cast<uint8_t>(R.below(NumRegs));
      I.Rb = static_cast<uint8_t>(R.below(NumRegs));
      I.Off = static_cast<int32_t>(R.next());
      I.Imm = R.next();

      std::vector<uint8_t> Bytes;
      encode(I, Bytes);
      ASSERT_EQ(Bytes.size(), opcodeLength(Op));

      Instr D;
      ASSERT_TRUE(decode(Bytes.data(), Bytes.size(), 0, D));
      EXPECT_EQ(D.Op, I.Op);
      EXPECT_EQ(D.Length, Bytes.size());
      // Only the fields the shape encodes must round-trip; re-encoding
      // the decoded form must be byte-identical (the canonical check).
      std::vector<uint8_t> Bytes2;
      encode(D, Bytes2);
      // AddImm/BaryRead carry their payload in both Imm and Off; the
      // encoder prefers Imm, so normalize through a second round trip.
      Instr D2;
      ASSERT_TRUE(decode(Bytes2.data(), Bytes2.size(), 0, D2));
      std::vector<uint8_t> Bytes3;
      encode(D2, Bytes3);
      EXPECT_EQ(Bytes2, Bytes3);
    }
  }
}

TEST(ISA, InvalidOpcodesRejected) {
  for (int B = 0; B != 256; ++B) {
    uint8_t Byte = static_cast<uint8_t>(B);
    Instr I;
    bool Decoded = decode(&Byte, 1, 0, I);
    if (opcodeLength(static_cast<Opcode>(B)) != 1) {
      EXPECT_FALSE(Decoded) << "byte " << B;
    }
  }
}

TEST(ISA, TruncationRejected) {
  std::vector<uint8_t> Bytes;
  Instr I;
  I.Op = Opcode::MovImm;
  I.Rd = 3;
  I.Imm = 0x123456789abcdefull;
  encode(I, Bytes);
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Instr D;
    EXPECT_FALSE(decode(Bytes.data(), Len, 0, D)) << "len " << Len;
  }
}

TEST(ISA, BadRegisterOperandRejected) {
  // mov rd, rs with rs = 200 is not a valid instruction.
  uint8_t Bytes[] = {static_cast<uint8_t>(Opcode::Mov), 3, 200};
  Instr D;
  EXPECT_FALSE(decode(Bytes, sizeof(Bytes), 0, D));
}

TEST(ISA, IndirectBranchClassification) {
  EXPECT_TRUE(isIndirectBranch(Opcode::Ret));
  EXPECT_TRUE(isIndirectBranch(Opcode::JmpInd));
  EXPECT_TRUE(isIndirectBranch(Opcode::CallInd));
  EXPECT_FALSE(isIndirectBranch(Opcode::Jmp));
  EXPECT_FALSE(isIndirectBranch(Opcode::Call));
  EXPECT_TRUE(isStore(Opcode::Store8));
  EXPECT_TRUE(isStore(Opcode::Store16));
  EXPECT_FALSE(isStore(Opcode::Load));
}

TEST(ISA, PrintIsNonEmptyForAllOpcodes) {
  for (Opcode Op : allOpcodes()) {
    Instr I;
    I.Op = Op;
    EXPECT_FALSE(printInstr(I).empty());
    EXPECT_NE(printInstr(I), "<invalid>");
  }
}

//===----------------------------------------------------------------------===//
// Assembler
//===----------------------------------------------------------------------===//

Instr mk(Opcode Op) {
  Instr I;
  I.Op = Op;
  return I;
}

TEST(Assembler, ResolvesForwardAndBackwardBranches) {
  AsmFunction Fn;
  Fn.Name = "f";
  int Top = Fn.newLabel();
  int End = Fn.newLabel();
  Fn.Items.push_back(AsmItem::label(Top));
  {
    Instr I = mk(Opcode::Jz);
    I.Ra = 1;
    AsmItem It = AsmItem::instr(I);
    It.Label = End; // forward
    Fn.Items.push_back(It);
  }
  {
    AsmItem It = AsmItem::instr(mk(Opcode::Jmp));
    It.Label = Top; // backward
    Fn.Items.push_back(It);
  }
  Fn.Items.push_back(AsmItem::label(End));
  Fn.Items.push_back(AsmItem::instr(mk(Opcode::Ret)));

  AssembledCode AC = assemble({Fn});
  // Decode and recompute targets.
  Instr Jz, Jmp;
  ASSERT_TRUE(decode(AC.Bytes.data(), AC.Bytes.size(), 0, Jz));
  ASSERT_TRUE(decode(AC.Bytes.data(), AC.Bytes.size(), Jz.Length, Jmp));
  uint64_t JzTarget = 0 + Jz.Length + static_cast<int64_t>(Jz.Off);
  uint64_t JmpTarget =
      Jz.Length + Jmp.Length + static_cast<int64_t>(Jmp.Off);
  EXPECT_EQ(JmpTarget, 0u);                        // back to Top
  EXPECT_EQ(JzTarget, AC.LabelOffsets[0].at(End)); // forward to End
}

TEST(Assembler, FunctionEntriesAreFourAligned) {
  std::vector<AsmFunction> Fns;
  for (int F = 0; F != 5; ++F) {
    AsmFunction Fn;
    Fn.Name = "f" + std::to_string(F);
    // Odd-length bodies force inter-function padding.
    for (int N = 0; N != F + 1; ++N)
      Fn.Items.push_back(AsmItem::instr(mk(Opcode::Nop)));
    Fn.Items.push_back(AsmItem::instr(mk(Opcode::Ret)));
    Fns.push_back(std::move(Fn));
  }
  AssembledCode AC = assemble(Fns);
  for (const auto &[Name, Off] : AC.FunctionOffsets)
    EXPECT_EQ(Off % 4, 0u) << Name;
}

TEST(Assembler, Align4PadsTheTailPoint) {
  // align4(TailLen) must make the position TailLen bytes later 4-aligned.
  for (unsigned TailLen : {0u, 2u, 5u}) {
    for (int Prefix = 0; Prefix != 4; ++Prefix) {
      AsmFunction Fn;
      Fn.Name = "f";
      for (int N = 0; N != Prefix; ++N)
        Fn.Items.push_back(AsmItem::instr(mk(Opcode::Nop)));
      Fn.Items.push_back(AsmItem::align4(TailLen));
      int Mark = Fn.newLabel();
      Fn.Items.push_back(AsmItem::label(Mark));
      Fn.Items.push_back(AsmItem::instr(mk(Opcode::Ret)));
      AssembledCode AC = assemble({Fn});
      EXPECT_EQ((AC.LabelOffsets[0].at(Mark) + TailLen) % 4, 0u)
          << "tail " << TailLen << " prefix " << Prefix;
    }
  }
}

TEST(Assembler, IntraModuleCallResolvedCrossModuleLeftAsReloc) {
  AsmFunction Callee;
  Callee.Name = "callee";
  Callee.Items.push_back(AsmItem::instr(mk(Opcode::Ret)));

  AsmFunction Caller;
  Caller.Name = "caller";
  {
    AsmItem It = AsmItem::instr(mk(Opcode::Call));
    It.Reloc = RelocKind::CallSym;
    It.Symbol = "callee"; // defined here: resolved
    Caller.Items.push_back(It);
  }
  {
    AsmItem It = AsmItem::instr(mk(Opcode::Call));
    It.Reloc = RelocKind::CallSym;
    It.Symbol = "extern_fn"; // left for the linker
    Caller.Items.push_back(It);
  }
  Caller.Items.push_back(AsmItem::instr(mk(Opcode::Ret)));

  AssembledCode AC = assemble({Callee, Caller});
  size_t CallRelocs = 0;
  for (const RelocEntry &R : AC.Relocs)
    if (R.Kind == RelocKind::CallSym) {
      ++CallRelocs;
      EXPECT_EQ(R.Symbol, "extern_fn");
    }
  EXPECT_EQ(CallRelocs, 1u);

  // The resolved call targets callee's entry.
  uint64_t CallerOff = AC.FunctionOffsets.at("caller");
  Instr CallInstr;
  ASSERT_TRUE(decode(AC.Bytes.data(), AC.Bytes.size(), CallerOff, CallInstr));
  uint64_t Target =
      CallerOff + CallInstr.Length + static_cast<int64_t>(CallInstr.Off);
  EXPECT_EQ(Target, AC.FunctionOffsets.at("callee"));
}

TEST(Assembler, JumpTableEntriesEightAlignedAndRelocated) {
  AsmFunction Fn;
  Fn.Name = "f";
  int Target = Fn.newLabel();
  int Table = Fn.newLabel();
  Fn.Items.push_back(AsmItem::label(Target));
  Fn.Items.push_back(AsmItem::instr(mk(Opcode::Ret)));
  Fn.Items.push_back(AsmItem::align8());
  Fn.Items.push_back(AsmItem::label(Table));
  Fn.Items.push_back(AsmItem::data64(Target));
  Fn.Items.push_back(AsmItem::data64(Target));

  AssembledCode AC = assemble({Fn});
  uint64_t TableOff = AC.LabelOffsets[0].at(Table);
  EXPECT_EQ(TableOff % 8, 0u);

  size_t JTRelocs = 0;
  for (const RelocEntry &R : AC.Relocs)
    if (R.Kind == RelocKind::JumpTable64) {
      ++JTRelocs;
      EXPECT_EQ(R.Addend, AC.LabelOffsets[0].at(Target));
    }
  EXPECT_EQ(JTRelocs, 2u);
}

} // namespace
