//===- cfg/CFGGen.cpp - Type-matching CFG generation ----------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGGen.h"

#include "cfg/SigCache.h"
#include "support/Assert.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"
#include "tables/ID.h"

#include <deque>
#include <unordered_set>

using namespace mcfi;

const char *const mcfi::SignalHandlerSig = "(i32,)->v";

namespace {

/// A function gathered from some module's aux info.
struct FuncEntry {
  std::string Name;
  const InternedSig *Sig = nullptr; ///< interned type signature
  uint64_t Addr = 0;                ///< absolute entry address
  bool AddressTaken = false;
  bool Variadic = false;
};

/// A call site with its resolved callee set (function indexes).
struct CallSiteEntry {
  uint64_t RetSiteAddr = 0;
  bool IsSetjmp = false;
  std::vector<uint32_t> Callees;
};

class CFGBuilder {
public:
  CFGBuilder(const std::vector<LoadedModuleView> &Modules,
             const CFGRefinement *Refine, unsigned Workers)
      : Modules(Modules), Refine(Refine), Workers(Workers) {}

  CFGPolicy build() {
    // One content-hash lookup per module; re-merges over already-loaded
    // modules reuse the interned views without touching the sig strings.
    // Tombstones (unloaded modules) have no object and no signatures.
    Sigs.reserve(Modules.size());
    for (const LoadedModuleView &M : Modules)
      Sigs.push_back(M.Obj ? getModuleSigs(*M.Obj) : nullptr);

    collectFunctions();
    indexBranchSites();
    resolveCallSites();
    propagateTailCalls();
    computeTargetSets();
    partition();
    return std::move(Policy);
  }

private:
  //===--------------------------------------------------------------------===//
  // Collection
  //===--------------------------------------------------------------------===//

  void collectFunctions() {
    for (size_t Mi = 0; Mi != Modules.size(); ++Mi) {
      const LoadedModuleView &M = Modules[Mi];
      if (!M.Obj) { // tombstone: no functions
        ModuleFuncEnd.push_back(static_cast<uint32_t>(Funcs.size()));
        continue;
      }
      const SigList &FuncSigs = Sigs[Mi]->FuncSigs;
      for (size_t Fi = 0; Fi != M.Obj->Aux.Functions.size(); ++Fi) {
        const FunctionInfo &F = M.Obj->Aux.Functions[Fi];
        FuncEntry E;
        E.Name = F.Name;
        E.Sig = FuncSigs[Fi];
        E.Addr = M.CodeBase + F.CodeOffset;
        E.AddressTaken = F.AddressTaken;
        E.Variadic = F.Variadic;
        uint32_t Idx = static_cast<uint32_t>(Funcs.size());
        // First definition wins on name clashes (matches the loader's
        // symbol-resolution order).
        FuncByName.emplace(E.Name, Idx);
        Funcs.push_back(std::move(E));
      }
      ModuleFuncEnd.push_back(static_cast<uint32_t>(Funcs.size()));
    }
    // A module may take the address of a function another module
    // defines; the definition then becomes an indirect-branch target.
    for (const LoadedModuleView &M : Modules) {
      if (!M.Obj)
        continue;
      for (const std::string &Name : M.Obj->Aux.AddressTakenImports)
        if (auto It = FuncByName.find(Name); It != FuncByName.end())
          Funcs[It->second].AddressTaken = true;
    }
    for (uint32_t Idx = 0; Idx != Funcs.size(); ++Idx)
      if (Funcs[Idx].AddressTaken) {
        BySig[Funcs[Idx].Sig].push_back(Idx);
        AddressTaken.push_back(Idx);
      }
  }

  /// Branch-site slots a view occupies in the global index space:
  /// tombstones keep their dead module's positions so surviving modules'
  /// already-patched Bary indexes stay valid.
  static size_t siteSlots(const LoadedModuleView &M) {
    return M.Obj ? M.Obj->Aux.BranchSites.size() : M.TombstoneSites;
  }

  void indexBranchSites() {
    uint32_t Next = 0;
    uint64_t LiveSites = 0;
    for (const LoadedModuleView &M : Modules) {
      Policy.SiteIndexBase.push_back(Next);
      Next += static_cast<uint32_t>(siteSlots(M));
      if (M.Obj)
        LiveSites += M.Obj->Aux.BranchSites.size();
    }
    Policy.BranchECN.assign(Next, -1);
    Policy.BranchClassSize.assign(Next, 0);
    // Tombstone slots are placeholders, not instrumented branches.
    Policy.NumIBs = LiveSites;
  }

  /// All address-taken functions matching a pointer signature. Interned
  /// signatures make the non-variadic case one hash lookup on a pointer
  /// key and the variadic case a pointer-compare scan over address-taken
  /// functions. Read-only after collectFunctions, so safe to call from
  /// merge workers.
  std::vector<uint32_t> matchTargets(const InternedSig *Sig, bool Variadic) {
    if (!Variadic) {
      auto It = BySig.find(Sig);
      return It == BySig.end() ? std::vector<uint32_t>() : It->second;
    }
    // Variadic pointers: exact matches plus fixed-prefix matches.
    // AddressTaken is in ascending function-index order, so the result
    // order matches the serial full-scan of earlier revisions.
    std::vector<uint32_t> Out;
    for (uint32_t I : AddressTaken)
      if (internedCalleeMatches(Sig, /*PointerVariadic=*/true, Funcs[I].Sig))
        Out.push_back(I);
    return Out;
  }

  /// Intersects an indirect branch's resolved callee set with the
  /// refinement's allowed names for its (owner, signature) key. Branches
  /// without a key keep the full type-matched set: the analysis saw no
  /// such site (foreign module, incomplete flow), so narrowing would be
  /// unsound. Intersection-only: this can never add a callee.
  void refineCallees(std::vector<uint32_t> &Callees, const std::string &Owner,
                     const InternedSig *Sig) {
    if (!Refine)
      return;
    auto It = Refine->Allowed.find({Owner, Sig ? Sig->Sig : std::string()});
    if (It == Refine->Allowed.end())
      return;
    const std::set<std::string> &Names = It->second;
    std::erase_if(Callees,
                  [&](uint32_t F) { return !Names.count(Funcs[F].Name); });
  }

  /// Builds the flat global-index → owning-module map for one aux array
  /// (size per module given by \p SizeOf), filling \p Base and \p Owner.
  size_t flattenIndex(std::vector<uint32_t> &Base, std::vector<uint32_t> &Owner,
                      size_t (*SizeOf)(const LoadedModuleView &)) {
    size_t Total = 0;
    for (const LoadedModuleView &M : Modules) {
      Base.push_back(static_cast<uint32_t>(Total));
      Total += SizeOf(M);
    }
    Owner.resize(Total);
    for (size_t Mi = 0; Mi != Modules.size(); ++Mi) {
      size_t End = Mi + 1 < Modules.size() ? Base[Mi + 1] : Total;
      for (size_t I = Base[Mi]; I != End; ++I)
        Owner[I] = static_cast<uint32_t>(Mi);
    }
    return Total;
  }

  void resolveCallSites() {
    std::vector<uint32_t> CallBase, CallOwner;
    size_t Total =
        flattenIndex(CallBase, CallOwner, [](const LoadedModuleView &V) {
          return V.Obj ? V.Obj->Aux.CallSites.size() : size_t(0);
        });
    for (size_t Mi = 0; Mi != Modules.size(); ++Mi)
      ModuleCallEnd.push_back(Mi + 1 < Modules.size()
                                  ? CallBase[Mi + 1]
                                  : static_cast<uint32_t>(Total));

    // Each worker writes only CallSites[GI] for its own global indexes;
    // FuncByName / BySig / Funcs are read-only by now.
    CallSites.assign(Total, {});
    ThreadPool::shared().parallelFor(
        Workers, Total, /*Grain=*/32, [&](size_t Begin, size_t End) {
          for (size_t GI = Begin; GI != End; ++GI) {
            uint32_t Mi = CallOwner[GI];
            const LoadedModuleView &M = Modules[Mi];
            size_t Local = GI - CallBase[Mi];
            const CallSiteInfo &CS = M.Obj->Aux.CallSites[Local];
            CallSiteEntry &E = CallSites[GI];
            E.RetSiteAddr = M.CodeBase + CS.RetSiteOffset;
            E.IsSetjmp = CS.IsSetjmp;
            if (CS.IsSetjmp)
              continue;
            if (CS.Direct) {
              auto It = FuncByName.find(CS.Callee);
              if (It != FuncByName.end())
                E.Callees.push_back(It->second);
            } else {
              const InternedSig *Sig = Sigs[Mi]->CallSigs[Local];
              E.Callees = matchTargets(Sig, CS.VariadicPointer);
              refineCallees(E.Callees, CS.Caller, Sig);
            }
          }
        });

    // Setjmp return sites are order-sensitive (the runtime's longjmp
    // validation list); collect them serially in global site order.
    for (const CallSiteEntry &E : CallSites)
      if (E.IsSetjmp)
        Policy.SetjmpRetSites.push_back(E.RetSiteAddr);
  }

  /// Tail-call closure: if g may tail-call h, then h returns wherever g
  /// would have returned, so RetTargets[h] ⊇ RetTargets[g].
  void propagateTailCalls() {
    // Seed return targets from ordinary call sites.
    RetTargets.assign(Funcs.size(), {});
    for (const CallSiteEntry &CS : CallSites) {
      if (CS.IsSetjmp)
        continue;
      for (uint32_t Callee : CS.Callees)
        RetTargets[Callee].push_back(CS.RetSiteAddr);
    }

    // Tail-call edges: caller -> callee set.
    std::vector<std::vector<uint32_t>> TailEdges(Funcs.size());
    for (size_t Mi = 0; Mi != Modules.size(); ++Mi) {
      const LoadedModuleView &M = Modules[Mi];
      if (!M.Obj)
        continue;
      for (size_t Ti = 0; Ti != M.Obj->Aux.TailCalls.size(); ++Ti) {
        const TailCallInfo &TC = M.Obj->Aux.TailCalls[Ti];
        auto CallerIt = FuncByName.find(TC.Caller);
        if (CallerIt == FuncByName.end())
          continue;
        std::vector<uint32_t> Callees;
        if (TC.Direct) {
          auto It = FuncByName.find(TC.Callee);
          if (It != FuncByName.end())
            Callees.push_back(It->second);
        } else {
          const InternedSig *Sig = Sigs[Mi]->TailSigs[Ti];
          Callees = matchTargets(Sig, TC.VariadicPointer);
          refineCallees(Callees, TC.Caller, Sig);
        }
        for (uint32_t C : Callees)
          TailEdges[CallerIt->second].push_back(C);
      }
    }

    // Worklist fixed point.
    std::deque<uint32_t> Work;
    for (uint32_t F = 0; F != Funcs.size(); ++F)
      if (!RetTargets[F].empty() && !TailEdges[F].empty())
        Work.push_back(F);
    std::vector<std::unordered_set<uint64_t>> Seen(Funcs.size());
    for (uint32_t F = 0; F != Funcs.size(); ++F)
      Seen[F].insert(RetTargets[F].begin(), RetTargets[F].end());
    while (!Work.empty()) {
      uint32_t G = Work.front();
      Work.pop_front();
      for (uint32_t H : TailEdges[G]) {
        bool Grew = false;
        for (uint64_t R : RetTargets[G]) {
          if (Seen[H].insert(R).second) {
            RetTargets[H].push_back(R);
            Grew = true;
          }
        }
        if (Grew && !TailEdges[H].empty())
          Work.push_back(H);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Target sets per branch site
  //===--------------------------------------------------------------------===//

  void computeTargetSets() {
    // Signal handlers may return to the sigreturn trampoline.
    uint64_t SigTrampoline = 0;
    const InternedSig *HandlerSig =
        SigInterner::global().intern(SignalHandlerSig);
    if (auto It = FuncByName.find("sig$return"); It != FuncByName.end())
      SigTrampoline = Funcs[It->second].Addr;

    std::vector<uint32_t> SiteBase;
    size_t Total = flattenIndex(SiteBase, SiteOwner, siteSlots);
    assert(Total == Policy.BranchECN.size());

    // Each worker writes only BranchTargets[GI] for its own indexes; all
    // inputs (RetTargets, Funcs, BySig, FuncByName) are read-only here.
    BranchTargets.assign(Total, {});
    ThreadPool::shared().parallelFor(
        Workers, Total, /*Grain=*/16, [&](size_t Begin, size_t End) {
          for (size_t GI = Begin; GI != End; ++GI) {
            uint32_t Mi = SiteOwner[GI];
            const LoadedModuleView &M = Modules[Mi];
            if (!M.Obj) // tombstone slot: no branch, no targets
              continue;
            size_t Local = GI - SiteBase[Mi];
            const BranchSite &BS = M.Obj->Aux.BranchSites[Local];
            std::vector<uint64_t> &Targets = BranchTargets[GI];
            switch (BS.Kind) {
            case BranchKind::Return: {
              auto It = FuncByName.find(BS.Function);
              if (It != FuncByName.end()) {
                Targets = RetTargets[It->second];
                const FuncEntry &F = Funcs[It->second];
                if (SigTrampoline && F.AddressTaken && F.Sig == HandlerSig)
                  Targets.push_back(SigTrampoline);
              }
              break;
            }
            case BranchKind::IndirectCall:
            case BranchKind::IndirectJump: {
              const InternedSig *Sig = Sigs[Mi]->BranchSigs[Local];
              std::vector<uint32_t> Matched =
                  matchTargets(Sig, BS.VariadicPointer);
              refineCallees(Matched, BS.Function, Sig);
              for (uint32_t FI : Matched)
                Targets.push_back(Funcs[FI].Addr);
              break;
            }
            case BranchKind::PltJump: {
              auto It = FuncByName.find(BS.PltSymbol);
              if (It != FuncByName.end())
                Targets.push_back(Funcs[It->second].Addr);
              break;
            }
            }
          }
        });
  }

  //===--------------------------------------------------------------------===//
  // Equivalence classes
  //===--------------------------------------------------------------------===//

  void partition() {
    // Index the IBT universe: address-taken function entries, PLT-target
    // entries, and return sites — i.e. every address appearing in some
    // branch's target set, plus address-taken functions that nothing
    // currently targets (they are still IBTs of the program).
    auto ibtIndex = [&](uint64_t Addr) -> uint32_t {
      auto [It, New] = IBTIndex.emplace(
          Addr, static_cast<uint32_t>(IBTAddrs.size()));
      if (New)
        IBTAddrs.push_back(Addr);
      return It->second;
    };

    // Under refinement, an address-taken function that survives in no
    // branch target set — and is not pinned — has no live inbound edge:
    // keeping it would leave a stale singleton class, so it drops out of
    // the IBT universe entirely (a branch to it then fails the Tary
    // check, exactly like any other non-target address).
    std::unordered_set<uint64_t> LiveTargets;
    if (Refine)
      for (const auto &Targets : BranchTargets)
        LiveTargets.insert(Targets.begin(), Targets.end());
    auto dropUnderRefinement = [&](const FuncEntry &F) {
      return Refine && !LiveTargets.count(F.Addr) &&
             !Refine->KeepTargets.count(F.Name);
    };

    // Index IBTs grouped *per module* (each module's address-taken
    // entries, then its return sites). Loading another module then only
    // appends to the IBT list, so the first-seen ECN assignment below
    // gives every pre-existing class the same number it had before —
    // the stability the incremental-update delta relies on. (A flat
    // all-functions-then-all-ret-sites order would splice a new
    // module's functions in front of older modules' return sites and
    // renumber their classes.)
    {
      uint32_t FuncBegin = 0, CallBegin = 0;
      for (size_t Mi = 0; Mi != Modules.size(); ++Mi) {
        for (uint32_t F = FuncBegin; F != ModuleFuncEnd[Mi]; ++F)
          if (Funcs[F].AddressTaken && !dropUnderRefinement(Funcs[F]))
            ibtIndex(Funcs[F].Addr);
        for (uint32_t C = CallBegin; C != ModuleCallEnd[Mi]; ++C)
          if (!CallSites[C].IsSetjmp)
            ibtIndex(CallSites[C].RetSiteAddr);
        FuncBegin = ModuleFuncEnd[Mi];
        CallBegin = ModuleCallEnd[Mi];
      }
    }
    // Remaining targets (e.g. PLT targets that are not address-taken),
    // in global-site order — also append-only across loads.
    for (const auto &Targets : BranchTargets)
      for (uint64_t A : Targets)
        ibtIndex(A);

    // Merge overlapping target sets: all targets of one branch share a
    // class (classic CFI coarsening, paper Sec. 2).
    UnionFind UF(IBTAddrs.size());
    for (const auto &Targets : BranchTargets) {
      for (size_t I = 1; I < Targets.size(); ++I)
        UF.merge(ibtIndex(Targets[0]), ibtIndex(Targets[I]));
    }

    // Assign ECNs to class roots and sizes.
    std::unordered_map<uint32_t, uint32_t> RootECN;
    std::unordered_map<uint32_t, uint64_t> RootSize;
    for (uint32_t I = 0; I != IBTAddrs.size(); ++I)
      ++RootSize[UF.find(I)];
    uint32_t NextECN = 0;
    for (uint32_t I = 0; I != IBTAddrs.size(); ++I) {
      uint32_t Root = UF.find(I);
      auto [It, New] = RootECN.emplace(Root, NextECN);
      if (New)
        ++NextECN;
      Policy.TargetECN[IBTAddrs[I]] = It->second;
    }

    // Real classes must stay below the reserved empty-class ECN so the
    // fail-closed encoding below can never collide with one.
    assert(NextECN < EmptyClassECN && "ECN space exhausted");

    for (size_t B = 0; B != BranchTargets.size(); ++B) {
      const auto &Targets = BranchTargets[B];
      if (!Modules[SiteOwner[B]].Obj) {
        // Tombstone slot: keep BranchECN -1 (no ID — the zeroed entry
        // the retire transaction left), NOT EmptyClassECN. EmptyClassECN
        // is a *valid encoded ID* for live-but-targetless sites; a
        // tombstone must stay indistinguishable from never-installed.
        continue;
      }
      if (Targets.empty()) {
        // Empty target set: the shared reserved ECN no address carries,
        // so the check always fails closed. One fixed number (rather
        // than a fresh ECN per site) keeps ECN assignment stable when
        // the CFG is regenerated with more modules, which the
        // incremental-update delta depends on.
        Policy.BranchECN[B] = EmptyClassECN;
        Policy.BranchClassSize[B] = 0;
        continue;
      }
      uint32_t Root = UF.find(IBTIndex.at(Targets[0]));
      Policy.BranchECN[B] = RootECN.at(Root);
      Policy.BranchClassSize[B] = RootSize.at(Root);
    }

    Policy.NumIBTs = IBTAddrs.size();
    Policy.NumEQCs = RootECN.size();
  }

  const std::vector<LoadedModuleView> &Modules;
  const CFGRefinement *Refine;
  unsigned Workers;
  CFGPolicy Policy;

  std::vector<std::shared_ptr<const ModuleSigs>> Sigs; ///< per module
  std::vector<FuncEntry> Funcs;
  std::vector<uint32_t> ModuleFuncEnd; ///< Funcs end index per module
  std::vector<uint32_t> ModuleCallEnd; ///< CallSites end index per module
  std::unordered_map<std::string, uint32_t> FuncByName;
  std::unordered_map<const InternedSig *, std::vector<uint32_t>> BySig;
  std::vector<uint32_t> AddressTaken; ///< ascending func indexes
  std::vector<CallSiteEntry> CallSites;
  std::vector<std::vector<uint64_t>> RetTargets; ///< per function
  std::vector<std::vector<uint64_t>> BranchTargets; ///< per global site
  std::vector<uint32_t> SiteOwner; ///< owning module per global site
  std::vector<uint64_t> IBTAddrs;
  std::unordered_map<uint64_t, uint32_t> IBTIndex;
};

} // namespace

CFGPolicy mcfi::generateCFG(const std::vector<LoadedModuleView> &Modules,
                            const CFGRefinement *Refinement,
                            unsigned Workers) {
  CFGBuilder B(Modules, Refinement, Workers);
  return B.build();
}
