//===- linker/Linker.h - MCFI static and dynamic linking --------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MCFI linker. Static linking loads a set of separately-compiled,
/// separately-instrumented modules, resolves relocations, generates the
/// combined CFG from their merged auxiliary info, verifies each module,
/// seals the code RX, and installs the ID tables with an update
/// transaction. Dynamic linking (dlopen) performs the paper's three
/// steps for a newly loaded library while other threads keep running:
///
///   (1) module preparation: map the library writable/not-executable and
///       apply its relocations;
///   (2) new CFG generation: regenerate the combined CFG, patch the
///       library's Bary indexes, verify it, and seal it RX;
///   (3) ID-table updates: one TxUpdate installs the new IDs, with the
///       GOT entry updates serialized between the Tary and Bary phases.
///
/// The linker also synthesizes the bootstrap module (the "_start" entry
/// that calls main and exits, and the sigreturn trampoline) through the
/// same assemble-instrument-verify pipeline as user code.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_LINKER_LINKER_H
#define MCFI_LINKER_LINKER_H

#include "cfg/CFGGen.h"
#include "runtime/Machine.h"
#include "tables/Shadow.h"

#include <condition_variable>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

namespace mcfi {

struct LinkOptions {
  /// Run the verifier on every module before sealing. Always on for
  /// instrumented programs; the unprotected baseline cannot verify.
  bool Verify = true;
  /// Generate and install the CFG policy (off for the baseline, which
  /// has no check transactions).
  bool InstallPolicy = true;
  /// Instrument the synthesized bootstrap module (matches whether the
  /// program modules are instrumented).
  bool InstrumentBootstrap = true;
  /// Install pure-extension policies (typical dlopen of a self-contained
  /// library) with the O(delta) incremental transaction instead of the
  /// full O(code-region) rebuild. Off forces every install through the
  /// full path (the bench's comparison baseline).
  bool IncrementalUpdates = true;
  /// Optional intersection-only CFG refinement from the dataflow engine;
  /// applied to every policy this linker generates (static link and
  /// dlopen regenerations alike, so the refined policy stays consistent
  /// across loads). The caller keeps the object alive for the linker's
  /// lifetime. Null: plain type-matching CFG.
  const CFGRefinement *Refinement = nullptr;
  /// Worker threads for the parallel CFG-merge phases (passed through to
  /// generateCFG). 1 = serial; any value yields an identical policy.
  unsigned MergeWorkers = 1;
};

/// What one coalesced dlopen request resolves to. Returned by value so a
/// loader thread never has to re-read Machine state (the module list may
/// be growing under other loaders by the time it looks).
struct DlopenResult {
  int64_t Handle = -1;        ///< machine module index, or negative
  uint32_t SiteIndexBase = 0; ///< the module's global branch-site base
  uint64_t CodeBase = 0;      ///< the module's mapped code base
};

/// Per-batch accounting for coalesced dynamic loads: one entry per
/// processed batch, whether it installed or failed.
struct DlopenBatchStats {
  uint32_t Requested = 0;   ///< dlopen requests coalesced into the batch
  uint32_t Loaded = 0;      ///< modules that mapped + resolved
  bool Installed = false;   ///< the single policy install succeeded
  bool Incremental = false; ///< that install took the delta path
  double MergeMicros = 0;   ///< one combined-CFG regeneration
  double InstallMicros = 0; ///< the single TxUpdate transaction
};

/// Per-batch accounting for coalesced unloads (dlclose), mirroring
/// DlopenBatchStats.
struct DlcloseBatchStats {
  uint32_t Requested = 0; ///< dlclose requests coalesced into the batch
  uint32_t Closed = 0;    ///< modules actually retired
  /// True when removing the batch changed surviving equivalence classes,
  /// forcing a full version-bumping reinstall on top of the retire
  /// transaction (class splits/renumbering; the common self-contained
  /// plugin case stays retire-only).
  bool PolicyReinstalled = false;
  double MergeMicros = 0;  ///< one tombstoned-CFG regeneration
  double RetireMicros = 0; ///< the single txUpdateRetire transaction
};

/// Drives loading, relocation, CFG generation, verification, and table
/// installation against one Machine.
class Linker {
public:
  Linker(Machine &M, LinkOptions Opts = LinkOptions());

  /// Statically links \p Objects (plus the synthesized bootstrap) into
  /// the machine. On failure returns false and sets \p Error.
  bool linkProgram(std::vector<MCFIObject> Objects, std::string &Error);

  /// Registers a library for later dynamic loading; the guest refers to
  /// it by the returned id in dlopen(id).
  int registerLibrary(MCFIObject Obj);

  /// The paper's three-step dynamic linking. Returns the module handle
  /// (machine module index), or a negative value on failure. Installed
  /// as the machine's DlopenHook by linkProgram. Concurrent callers are
  /// coalesced (see dlopenOne).
  int64_t dlopen(int64_t RegistryId);

  /// Coalescing dlopen: requests that arrive while another thread is
  /// mid-install are queued, and the installing thread (the combiner
  /// leader) drains the queue as ONE batch — one CFG regeneration, one
  /// version bump, one Tary→GOT→Bary update transaction — before waking
  /// the waiters with their per-request results.
  DlopenResult dlopenOne(int64_t RegistryId);

  /// Explicitly loads \p RegistryIds as one batch (one combined install),
  /// bypassing the combiner queue. Results are index-parallel to the
  /// input. Used by benchmarks/tests that need exact batch shapes.
  std::vector<DlopenResult> dlopenBatch(const std::vector<int64_t> &RegistryIds);

  /// Module unload — the inverse of the dlopen path. The module's table
  /// entries are zeroed by ONE retire transaction (no version bump;
  /// checks against it fail closed immediately), its setjmp sites leave
  /// the longjmp list, its GOT-published addresses are zeroed in the
  /// transaction's between-phases hook, and its code range + exclusive
  /// ECNs go to the machine's epoch reclaimer to wait out the grace
  /// period. Returns false for an invalid handle (unknown, static
  /// program module, or already closed). Installed as the machine's
  /// DlcloseHook by linkProgram; concurrent callers are coalesced like
  /// dlopenOne's.
  bool dlcloseOne(int64_t Handle);
  int64_t dlclose(int64_t Handle) { return dlcloseOne(Handle) ? 0 : -1; }

  /// Explicitly unloads \p Handles as one batch (one retire transaction,
  /// one tombstoned-CFG regeneration), bypassing the combiner queue.
  /// Results are index-parallel to the input.
  std::vector<bool> dlcloseBatch(const std::vector<int64_t> &Handles);

  /// The policy currently installed (valid after linkProgram).
  const CFGPolicy &policy() const { return Policy; }

  /// Per-install accounting for every update transaction this linker
  /// ran, in order (the metrics layer aggregates these).
  const std::vector<TxUpdateStats> &updateHistory() const {
    return UpdateHistory;
  }

  /// Per-batch accounting for coalesced dynamic loads, in install order.
  const std::vector<DlopenBatchStats> &batchHistory() const {
    return BatchHistory;
  }

  /// Per-batch accounting for coalesced unloads, in retire order.
  const std::vector<DlcloseBatchStats> &unloadHistory() const {
    return UnloadHistory;
  }

  /// The shadow of the installed policy (delta source; exposed for
  /// metrics and tests).
  const PolicyShadow &shadow() const { return Shadow; }

  const std::string &lastError() const { return LastError; }

private:
  /// One queued request in the dlopen combiner.
  struct PendingDlopen {
    int64_t Id = -1;
    DlopenResult Result;
    bool Done = false;
  };

  /// One queued request in the dlclose combiner.
  struct PendingDlclose {
    int64_t Handle = -1;
    bool Ok = false;
    bool Done = false;
  };

  bool loadAndRelocate(MCFIObject Obj, std::string &Error);
  bool resolveModule(int Index, std::string &Error);
  void patchBaryIndexes(const CFGPolicy &Policy);
  void updateGotEntries();
  bool installPolicy(CFGPolicy &&NewPolicy, uint32_t BatchModules = 1);
  void processBatch(std::vector<PendingDlopen *> &Batch);
  void processUnloadBatch(std::vector<PendingDlclose *> &Batch);
  /// Views of every mapped module, index-parallel to M.modules();
  /// retired modules appear as positionally-stable tombstones.
  std::vector<LoadedModuleView> moduleViews() const;
  /// Flattens \p P to table coordinates (the shape PolicyShadow holds).
  PolicyImage flattenPolicy(const CFGPolicy &P) const;
  MCFIObject makeBootstrap();

  Machine &M;
  LinkOptions Opts;
  CFGPolicy Policy;
  PolicyShadow Shadow;
  std::vector<TxUpdateStats> UpdateHistory;
  std::vector<DlopenBatchStats> BatchHistory;
  std::vector<DlcloseBatchStats> UnloadHistory;
  std::vector<MCFIObject> Registry;
  /// Serials of modules whose BaryIndex32 relocations are patched.
  /// Keyed by the never-reused module Serial, NOT the module index: the
  /// reclaimer's tail-trim lets indices be reused after an unload, and
  /// an index-keyed "already patched" bit would silently skip the new
  /// occupant (index-reuse ABA).
  std::unordered_set<uint64_t> BaryPatched;
  /// Modules mapped by linkProgram (bootstrap + program). They can never
  /// be dlclosed: the running program's own code and the policy's stable
  /// prefix live there.
  size_t StaticModules = 0;
  std::string LastError;
  std::mutex DlopenLock; ///< serializes dynamic link operations

  /// Combiner state: loaders enqueue under BatchLock; the leader drains
  /// the queue in rounds while holding DlopenLock for the install work.
  /// dlclose mirrors the structure with its own queue so unload batches
  /// coalesce the same way (close requests arriving mid-retire join the
  /// next round).
  std::mutex BatchLock;
  std::condition_variable BatchCv;
  std::deque<PendingDlopen *> BatchQueue;
  bool LeaderActive = false;
  std::condition_variable CloseCv;
  std::deque<PendingDlclose *> CloseQueue;
  bool CloseLeaderActive = false;
};

} // namespace mcfi

#endif // MCFI_LINKER_LINKER_H
