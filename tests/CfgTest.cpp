//===- tests/CfgTest.cpp - CFG generation tests ----------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests of the type-matching CFG generator and the signature matcher:
/// equivalence-class structure, the variadic prefix rule, tail-call
/// return propagation, and return/call separation.
///
//===----------------------------------------------------------------------===//

#include "cfg/CFGGen.h"
#include "cfg/SigMatch.h"
#include "metrics/Harness.h"

#include <gtest/gtest.h>

using namespace mcfi;

namespace {

//===----------------------------------------------------------------------===//
// Signature splitting / matching
//===----------------------------------------------------------------------===//

TEST(SigMatch, SplitBasics) {
  FnSigParts P;
  ASSERT_TRUE(splitFnSig("(i64,)->i64", P));
  EXPECT_EQ(P.Params, std::vector<std::string>{"i64"});
  EXPECT_FALSE(P.Variadic);
  EXPECT_EQ(P.Ret, "i64");

  ASSERT_TRUE(splitFnSig("()->v", P));
  EXPECT_TRUE(P.Params.empty());

  ASSERT_TRUE(splitFnSig("(i32,...)->i32", P));
  EXPECT_TRUE(P.Variadic);
  EXPECT_EQ(P.Params, std::vector<std::string>{"i32"});
}

TEST(SigMatch, SplitNestedFunctionPointerParams) {
  FnSigParts P;
  // void(void(*)(int), int) canonicalizes with a nested paren group.
  ASSERT_TRUE(splitFnSig("(*(i32,)->v,i32,)->v", P));
  ASSERT_EQ(P.Params.size(), 2u);
  EXPECT_EQ(P.Params[0], "*(i32,)->v");
  EXPECT_EQ(P.Params[1], "i32");
}

TEST(SigMatch, SplitRejectsNonFunctionSigs) {
  FnSigParts P;
  EXPECT_FALSE(splitFnSig("i64", P));
  EXPECT_FALSE(splitFnSig("*(i64,)->i64", P));
  EXPECT_FALSE(splitFnSig("(i64", P));
  EXPECT_FALSE(splitFnSig("(i64,)->", P));
}

TEST(SigMatch, VariadicPrefixRule) {
  EXPECT_TRUE(calleeSigMatches("(i64,...)->i64", true, "(i64,...)->i64"));
  EXPECT_TRUE(calleeSigMatches("(i64,...)->i64", true, "(i64,i64,...)->i64"));
  EXPECT_TRUE(calleeSigMatches("(i64,...)->i64", true, "(i64,*i8,)->i64"));
  EXPECT_FALSE(calleeSigMatches("(i64,...)->i64", true, "(i32,)->i64"));
  EXPECT_FALSE(calleeSigMatches("(i64,...)->i64", true, "(i64,)->v"));
  EXPECT_FALSE(calleeSigMatches("(i64,)->i64", false, "(i64,i64,)->i64"));
}

//===----------------------------------------------------------------------===//
// Policy structure (via compiled programs)
//===----------------------------------------------------------------------===//

CFGPolicy buildPolicy(const char *Source, bool TailCalls = true) {
  BuildSpec Spec;
  Spec.TailCalls = TailCalls;
  Spec.LinkRtLibrary = false;
  BuiltProgram BP = buildProgram({Source}, Spec);
  EXPECT_TRUE(BP.Ok) << BP.Error;
  return BP.L->policy();
}

TEST(CFGGen, SameTypeFunctionsShareAClass) {
  const char *Source = R"(
    long a(long x) { return x; }
    long b(long x) { return x + 1; }
    long other(long x, long y) { return x + y; }
    long (*p1)(long) = a;
    long (*p2)(long) = b;
    long (*q)(long, long) = other;
    int main() { return (int)(p1(1) + p2(2) + q(1, 2)); }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  BuiltProgram BP = buildProgram({Source}, Spec);
  ASSERT_TRUE(BP.Ok) << BP.Error;
  const CFGPolicy &Policy = BP.L->policy();

  uint64_t A = BP.M->findFunction("a"), B = BP.M->findFunction("b"),
           O = BP.M->findFunction("other");
  ASSERT_TRUE(A && B && O);
  // a and b share an equivalence class; other is in a different one.
  EXPECT_EQ(Policy.getTaryECN(A), Policy.getTaryECN(B));
  EXPECT_NE(Policy.getTaryECN(A), Policy.getTaryECN(O));
}

TEST(CFGGen, NonAddressTakenFunctionIsNotATarget) {
  const char *Source = R"(
    long used(long x) { return x; }
    long hidden(long x) { return x; } /* same type, never address-taken */
    long (*p)(long) = used;
    int main() { return (int)p(1) + (int)hidden(2); }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  BuiltProgram BP = buildProgram({Source}, Spec);
  ASSERT_TRUE(BP.Ok) << BP.Error;
  EXPECT_GE(BP.L->policy().getTaryECN(BP.M->findFunction("used")), 0);
  EXPECT_EQ(BP.L->policy().getTaryECN(BP.M->findFunction("hidden")), -1);
}

TEST(CFGGen, ReturnSitesAndFunctionEntriesAreSeparateClasses) {
  const char *Source = R"(
    long cb(long x) { return x; }
    long (*p)(long) = cb;
    int main() { return (int)p(5); }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  BuiltProgram BP = buildProgram({Source}, Spec);
  ASSERT_TRUE(BP.Ok) << BP.Error;
  const CFGPolicy &Policy = BP.L->policy();

  uint64_t Entry = BP.M->findFunction("cb");
  // Find a return site of a call in main.
  uint64_t RetSite = 0;
  for (const MappedModule &Mod : BP.M->modules())
    for (const CallSiteInfo &CS : Mod.Obj->Aux.CallSites)
      if (CS.Caller == "main" && !CS.IsSetjmp)
        RetSite = Mod.CodeBase + CS.RetSiteOffset;
  ASSERT_NE(RetSite, 0u);
  ASSERT_GE(Policy.getTaryECN(Entry), 0);
  ASSERT_GE(Policy.getTaryECN(RetSite), 0);
  EXPECT_NE(Policy.getTaryECN(Entry), Policy.getTaryECN(RetSite));
}

TEST(CFGGen, TailCallsMergeReturnClasses) {
  // f tail-calls g, so g's returns extend to f's return sites; with
  // tail calls off, g returns only to its own callers. The tail-call
  // build must therefore have <= as many classes.
  const char *Source = R"(
    long g(long x) { return x + 1; }
    long f(long x) { return g(x); }   /* tail call when enabled */
    int main() {
      long a = f(1);
      long b = g(2);
      return (int)(a + b);
    }
  )";
  CFGPolicy NoTail = buildPolicy(Source, /*TailCalls=*/false);
  CFGPolicy Tail = buildPolicy(Source, /*TailCalls=*/true);
  EXPECT_LE(Tail.NumEQCs, NoTail.NumEQCs);
  EXPECT_LE(Tail.NumIBTs, NoTail.NumIBTs); // tail call has no ret site
}

TEST(CFGGen, VariadicPointerReachesPrefixTargets) {
  const char *Source = R"(
    long v1(long a, ...) { return a; }
    long v2(long a, long b, ...) { return a + b; }
    long fixed(long a, long b) { return a * b; }
    long (*vp)(long, ...) = v1;
    long (*keep)(long, long, ...) = v2; /* make v2 address-taken */
    int main() { return (int)vp(1, 2, 3); }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  BuiltProgram BP = buildProgram({Source}, Spec);
  ASSERT_TRUE(BP.Ok) << BP.Error;
  const CFGPolicy &Policy = BP.L->policy();
  // The variadic call site's class contains both v1 and v2 (prefix
  // rule), so their ECNs merged.
  EXPECT_EQ(Policy.getTaryECN(BP.M->findFunction("v1")),
            Policy.getTaryECN(BP.M->findFunction("v2")));
  // fixed is not address-taken: not a target at all.
  EXPECT_EQ(Policy.getTaryECN(BP.M->findFunction("fixed")), -1);
}

TEST(CFGGen, EmptyTargetSetsFailClosed) {
  // An indirect call whose type matches no address-taken function gets a
  // fresh ECN shared with no target.
  const char *Source = R"(
    long lonely(long a, long b, long c) { return a + b + c; }
    int main() {
      long (*p)(long, long, long) =
          (long (*)(long, long, long))dlsym(-1, "nothing");
      if (p) return (int)p(1, 2, 3);
      return (int)lonely(1, 2, 3);
    }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  BuiltProgram BP = buildProgram({Source}, Spec);
  ASSERT_TRUE(BP.Ok) << BP.Error;
  const CFGPolicy &Policy = BP.L->policy();
  bool FoundEmpty = false;
  size_t ModIdx = 0;
  for (const MappedModule &Mod : BP.M->modules()) {
    uint32_t Base = Policy.SiteIndexBase[ModIdx++];
    for (size_t S = 0; S != Mod.Obj->Aux.BranchSites.size(); ++S)
      if (Mod.Obj->Aux.BranchSites[S].Kind == BranchKind::IndirectCall &&
          Policy.BranchClassSize[Base + S] == 0) {
        FoundEmpty = true;
        EXPECT_GE(Policy.BranchECN[Base + S], 0); // fresh ECN, fails closed
      }
  }
  EXPECT_TRUE(FoundEmpty);
}

TEST(CFGGen, StatsAreConsistent) {
  for (size_t I = 0; I != 3; ++I) {
    const BenchProfile &P = specProfiles()[I];
    std::string Source = generateWorkload(P, WorkloadVariant::Fixed);
    BuiltProgram BP = buildProgram({Source});
    ASSERT_TRUE(BP.Ok) << BP.Error;
    const CFGPolicy &Policy = BP.L->policy();
    EXPECT_EQ(Policy.NumIBs, Policy.BranchECN.size());
    EXPECT_EQ(Policy.NumIBTs, Policy.TargetECN.size());
    EXPECT_GT(Policy.NumEQCs, 2u); // far beyond coarse-grained CFI
    EXPECT_LE(Policy.NumEQCs, Policy.NumIBTs);
    // Every IBT is 4-byte aligned (the Tary space optimization).
    for (const auto &[Addr, ECN] : Policy.TargetECN)
      EXPECT_EQ(Addr % 4, 0u);
  }
}

} // namespace
