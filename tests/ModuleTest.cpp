//===- tests/ModuleTest.cpp - .mcfo format tests ---------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "module/MCFIObject.h"
#include "support/RNG.h"
#include "toolchain/Toolchain.h"

#include <gtest/gtest.h>

using namespace mcfi;

namespace {

MCFIObject sampleObject() {
  CompileResult CR = compileModule(R"(
    long cb(long x) { return x + 1; }
    long run(long (*f)(long), long v) { return f(v); }
    long pick(long x) {
      switch (x) {
      case 0: return 10;
      case 1: return 11;
      case 2: return 12;
      case 3: return 13;
      default: return 0;
      }
    }
    int main() { return (int)(run(cb, 1) + pick(2)); }
  )",
                                   {.ModuleName = "sample"});
  EXPECT_TRUE(CR.Ok);
  return std::move(CR.Obj);
}

bool objectsEqual(const MCFIObject &A, const MCFIObject &B) {
  // Serialization is canonical except for the unordered DataSymbols map;
  // compare through a second write after normalizing is overkill — field
  // comparison suffices here.
  if (A.Name != B.Name || A.Code != B.Code || A.DataSize != B.DataSize ||
      A.DataInit != B.DataInit || A.DataSymbols != B.DataSymbols ||
      A.Imports != B.Imports || A.EntryFunction != B.EntryFunction)
    return false;
  if (A.Relocs.size() != B.Relocs.size() ||
      A.Aux.Functions.size() != B.Aux.Functions.size() ||
      A.Aux.BranchSites.size() != B.Aux.BranchSites.size() ||
      A.Aux.CallSites.size() != B.Aux.CallSites.size() ||
      A.Aux.TailCalls.size() != B.Aux.TailCalls.size() ||
      A.Aux.JumpTables.size() != B.Aux.JumpTables.size() ||
      A.Aux.AddressTakenImports != B.Aux.AddressTakenImports)
    return false;
  for (size_t I = 0; I != A.Aux.Functions.size(); ++I) {
    const FunctionInfo &FA = A.Aux.Functions[I], &FB = B.Aux.Functions[I];
    if (FA.Name != FB.Name || FA.TypeSig != FB.TypeSig ||
        FA.CodeOffset != FB.CodeOffset ||
        FA.AddressTaken != FB.AddressTaken || FA.Variadic != FB.Variadic)
      return false;
  }
  for (size_t I = 0; I != A.Aux.BranchSites.size(); ++I) {
    const BranchSite &SA = A.Aux.BranchSites[I], &SB = B.Aux.BranchSites[I];
    if (SA.Kind != SB.Kind || SA.SeqStart != SB.SeqStart ||
        SA.BranchOffset != SB.BranchOffset || SA.Function != SB.Function ||
        SA.TypeSig != SB.TypeSig || SA.PltSymbol != SB.PltSymbol)
      return false;
  }
  return true;
}

TEST(Serialization, RoundTrip) {
  MCFIObject Obj = sampleObject();
  std::vector<uint8_t> Blob = writeObject(Obj);
  MCFIObject Back;
  ASSERT_TRUE(readObject(Blob, Back));
  EXPECT_TRUE(objectsEqual(Obj, Back));
}

TEST(Serialization, RejectsBadMagicAndVersion) {
  MCFIObject Obj = sampleObject();
  std::vector<uint8_t> Blob = writeObject(Obj);
  MCFIObject Out;

  std::vector<uint8_t> BadMagic = Blob;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(readObject(BadMagic, Out));

  std::vector<uint8_t> BadVersion = Blob;
  BadVersion[4] += 1;
  EXPECT_FALSE(readObject(BadVersion, Out));
}

TEST(Serialization, RejectsAllTruncations) {
  MCFIObject Obj = sampleObject();
  std::vector<uint8_t> Blob = writeObject(Obj);
  // Every strict prefix must be rejected (sampled for speed).
  MCFIObject Out;
  for (size_t Len = 0; Len < Blob.size(); Len += 37) {
    std::vector<uint8_t> Prefix(Blob.begin(), Blob.begin() + Len);
    EXPECT_FALSE(readObject(Prefix, Out)) << "prefix " << Len;
  }
  std::vector<uint8_t> Extended = Blob;
  Extended.push_back(0);
  EXPECT_FALSE(readObject(Extended, Out)); // trailing garbage
}

TEST(Serialization, FuzzedBlobsNeverCrash) {
  MCFIObject Obj = sampleObject();
  std::vector<uint8_t> Blob = writeObject(Obj);
  RNG R(7);
  // Random byte flips: the reader must either reject or produce an
  // object whose offsets were bounds-checked — never crash.
  for (int Trial = 0; Trial != 2000; ++Trial) {
    std::vector<uint8_t> Fuzzed = Blob;
    int Flips = 1 + static_cast<int>(R.below(8));
    for (int F = 0; F != Flips; ++F)
      Fuzzed[R.below(Fuzzed.size())] ^= static_cast<uint8_t>(R.next());
    MCFIObject Out;
    (void)readObject(Fuzzed, Out);
  }
  SUCCEED();
}

TEST(Serialization, SeparateCompilationIsStable) {
  // The same source compiles to bit-identical objects regardless of
  // when/how often it is compiled: instrumentation depends only on the
  // module itself (the separate-compilation property).
  MCFIObject A = sampleObject();
  MCFIObject B = sampleObject();
  EXPECT_EQ(writeObject(A), writeObject(B));
}

} // namespace
