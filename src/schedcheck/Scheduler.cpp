//===- schedcheck/Scheduler.cpp - Cooperative schedule exploration --------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The harness runs every logical thread of a scenario as a ucontext
// fiber on one OS thread. The SchedPoint Yield hook fires inside the
// running fiber immediately before each atomic access; the harness takes
// a scheduling decision there and, when it picks a different thread,
// swaps fiber contexts. Because all "concurrency" is these explicit
// switches, a schedule — the sequence of chosen thread indexes — fully
// determines a run, which is what makes violations replayable.
//
// Exploration is stateless prefix-replay DFS (the CHESS recipe): run a
// schedule, then for every post-prefix decision enqueue each alternative
// runnable thread whose preemption cost still fits the bound, as a new
// forced prefix. The default policy after a prefix never preempts (keep
// the current thread while runnable, else the lowest runnable), so the
// bound is respected by construction. A state fingerprint — tables,
// counters, and per-thread progress — prunes decisions already expanded
// with at least as much preemption budget remaining: the default suffix
// from an identical state is identical and costs zero preemptions, so
// everything reachable from the revisit was already reachable before.
//
//===----------------------------------------------------------------------===//

#include "schedcheck/SchedCheck.h"

#include "support/RNG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <ucontext.h>
#include <unordered_map>

using namespace mcfi;
using namespace mcfi::schedcheck;

namespace {

constexpr size_t FiberStackSize = 256 * 1024;

uint64_t hashMix(uint64_t H, uint64_t V) {
  // FNV-1a over 64-bit lanes; collisions only cost pruning precision.
  return (H ^ V) * 1099511628211ull;
}

uint64_t packAccess(const SchedAccess &A) {
  return (uint64_t(A.Op) << 56) ^ (uint64_t(A.Obj) << 48) ^
         (A.Index << 32) ^ A.Value;
}

/// One scheduling decision, the unit of DFS expansion.
struct Decision {
  uint64_t StateHash = 0;
  std::vector<int> Enabled;
  int CurrentThread = -1; ///< thread that was running (-1: none)
  bool CurrentEnabled = false;
  int PreemptionsBefore = 0;
  int Chosen = -1;
};

struct TraceEvent {
  int Thread;
  SchedAccess Access;
  bool IsYield; ///< yield (pre-access) vs observe (post-access)
};

struct ThreadState {
  ucontext_t Ctx;
  std::vector<char> Stack;
  bool Alive = false;
  size_t OpCursor = 0;     ///< index of the script op in progress
  uint64_t ObsHash = 0;    ///< hash of values observed since last reset
  uint64_t RetriesThisOp = 0;
  SchedAccess Pending{};   ///< the access the thread is parked before
  // Oracle inputs latched at check-op start (kept here, not on the
  // fiber stack, so the state fingerprint can include them).
  size_t CurWindowLo = 0;
  size_t CurFrontier = 0;
};

class Harness {
public:
  Harness(const Scenario &S, const ExploreOptions &Opts)
      : S(S), Opts(Opts) {
    Threads.resize(1 + S.Checkers.size());
    for (auto &T : Threads)
      T.Stack.resize(FiberStackSize);
    // Precompute the linearization sequence: the initial snapshot plus
    // the snapshot after each update that is expected to take effect.
    Lin.push_back(&S.Initial);
    for (const SpecPolicy &P : S.Updates)
      if (!P.ExpectExhausted)
        Lin.push_back(&P);
    // A checker may retry once per overlapping update plus slack; one
    // spinning past that while the seqlock is odd is merely re-running
    // an identical loop iteration and is parked (made non-runnable)
    // until the update finishes, so every schedule terminates.
    RetryAllowance = S.Updates.size() + 2;
    HardRetryBound = 4 * (S.Updates.size() + 2) + 8;
  }

  RunRecord execute(const std::vector<int> &Prefix, RNG *Rand);

  const std::vector<Decision> &decisions() const { return Decisions; }
  const std::vector<int> &chosen() const { return Chosen; }

private:
  // Fiber bodies and hook handlers (run on fiber stacks).
  void fiberMain(int Index);
  void runUpdater();
  void runChecker(int Index);
  void onYield(const SchedAccess &A);
  void onObserve(const SchedAccess &A);
  void assignLinearization(OpRecord &R);
  /// Records the violation and ends the run. Called from a fiber it
  /// jumps back to execute() and never returns; called from the main
  /// context (a bad forced first step) it returns and the caller checks
  /// Aborted.
  void abortRun(ViolationKind Kind, const std::string &Msg);

  int decide();
  bool isEnabled(int I) const;
  bool anyAlive() const;
  bool graceElapsed() const;
  void awaitGrace();
  uint64_t fingerprint() const;
  std::string formatTrace() const;
  std::string describeOp(const OpRecord &R) const;

  static void yieldHook(void *Ctx, const SchedAccess &A) {
    static_cast<Harness *>(Ctx)->onYield(A);
  }
  static void observeHook(void *Ctx, const SchedAccess &A) {
    static_cast<Harness *>(Ctx)->onObserve(A);
  }
  static void fiberEntry(int Index);

  const Scenario &S;
  ExploreOptions Opts;
  std::vector<const SpecPolicy *> Lin;
  uint64_t RetryAllowance;
  uint64_t HardRetryBound;

  std::unique_ptr<IDTables> Tables;
  std::vector<ThreadState> Threads;
  ucontext_t MainCtx;
  int Current = -1;
  bool Aborted = false;
  bool InRun = false;
  /// The updater is parked before a GraceBefore update until every live
  /// checker has passed a quiescent point (op boundary) since the last
  /// completed update.
  bool WaitingGrace = false;

  std::vector<int> ForcedPrefix;
  size_t ForcedPos = 0;
  RNG *Rand = nullptr;
  std::vector<int> Chosen;
  std::vector<Decision> Decisions;
  int Preemptions = 0;
  std::vector<TraceEvent> Trace;

  // Oracle state.
  size_t StartedUpdates = 0;   ///< effective updates whose call began
  size_t CompletedUpdates = 0; ///< effective updates whose call returned
  size_t Frontier = 0; ///< max linearization point of any completed op
  RunRecord Run;
};

/// The harness whose fibers are currently executing. The whole subsystem
/// is single-OS-threaded by design, so a plain global suffices and lets
/// makecontext entry points reach their harness without pointer
/// splitting through int arguments.
Harness *GActiveHarness = nullptr;

void Harness::fiberEntry(int Index) { GActiveHarness->fiberMain(Index); }

bool Harness::anyAlive() const {
  for (const auto &T : Threads)
    if (T.Alive)
      return true;
  return false;
}

bool Harness::graceElapsed() const {
  // Grace has elapsed once every live checker's in-flight op began
  // after all completed updates: any pre-retire snapshot it could hold
  // is gone. Checkers latch CurWindowLo (= CompletedUpdates) at each op
  // start, so an op boundary is exactly a quiescent point — the harness
  // analogue of the Machine's syscall-boundary quiescence generations.
  for (size_t I = 1; I < Threads.size(); ++I) {
    const ThreadState &T = Threads[I];
    if (T.Alive && T.CurWindowLo < CompletedUpdates)
      return false;
  }
  return true;
}

bool Harness::isEnabled(int I) const {
  const ThreadState &T = Threads[I];
  if (!T.Alive)
    return false;
  // The updater is parked while it awaits the grace period; it wakes as
  // soon as the laggard checker crosses an op boundary (or dies).
  if (I == 0 && WaitingGrace && !graceElapsed())
    return false;
  // Park a checker that has exhausted its retry allowance while an
  // update transaction is still in flight: running it again only
  // repeats an identical seqlock iteration. It wakes up as soon as the
  // updater brings the generation back to even.
  if (I != 0 && T.RetriesThisOp > RetryAllowance &&
      (Tables->peekUpdateSeq() & 1) != 0)
    return false;
  return true;
}

uint64_t Harness::fingerprint() const {
  uint64_t H = 1469598103934665603ull;
  for (uint64_t W = 0; W < S.CodeCapacity / 4; ++W)
    H = hashMix(H, Tables->peekTaryWord(W));
  for (uint32_t B = 0; B < S.BaryCapacity; ++B)
    H = hashMix(H, Tables->peekBaryEntry(B));
  H = hashMix(H, Tables->currentVersion());
  H = hashMix(H, Tables->peekUpdateSeq());
  H = hashMix(H, Tables->updateCount());
  H = hashMix(H, Tables->versionedUpdateCount());
  H = hashMix(H, Tables->peekEpochBase());
  H = hashMix(H, Tables->installedTaryLimitBytes());
  H = hashMix(H, Tables->installedBaryCount());
  H = hashMix(H, uint64_t(Current + 1));
  H = hashMix(H, uint64_t(WaitingGrace));
  H = hashMix(H, StartedUpdates);
  H = hashMix(H, CompletedUpdates);
  H = hashMix(H, Frontier);
  for (size_t I = 0; I < Threads.size(); ++I) {
    const ThreadState &T = Threads[I];
    H = hashMix(H, (uint64_t(T.Alive) << 1) | uint64_t(isEnabled(int(I))));
    H = hashMix(H, T.OpCursor);
    H = hashMix(H, T.ObsHash);
    H = hashMix(H, packAccess(T.Pending));
    H = hashMix(H, T.CurWindowLo);
    H = hashMix(H, T.CurFrontier);
  }
  return H;
}

int Harness::decide() {
  std::vector<int> Enabled;
  for (int I = 0; I < int(Threads.size()); ++I)
    if (isEnabled(I))
      Enabled.push_back(I);
  if (Enabled.empty()) {
    if (anyAlive())
      abortRun(ViolationKind::Harness,
               "no runnable logical thread (scheduler deadlock)");
    return -1; // run complete (or aborted from the main context)
  }
  bool CurEnabled = Current >= 0 && isEnabled(Current);
  int Choice;
  if (ForcedPos < ForcedPrefix.size()) {
    int F = ForcedPrefix[ForcedPos++];
    if (F < 0 || F >= int(Threads.size()) || !isEnabled(F)) {
      abortRun(ViolationKind::Harness,
               formatString("schedule step %zu chooses thread %d, which is "
                            "not runnable at that point",
                            ForcedPos - 1, F));
      return -1; // only reached when aborting from the main context
    }
    Choice = F;
  } else if (Rand) {
    Choice = Enabled[Rand->below(Enabled.size())];
  } else {
    Choice = CurEnabled ? Current : Enabled.front();
  }

  Decision D;
  D.StateHash = fingerprint();
  D.Enabled = Enabled;
  D.CurrentThread = Current;
  D.CurrentEnabled = CurEnabled;
  D.PreemptionsBefore = Preemptions;
  D.Chosen = Choice;
  Decisions.push_back(std::move(D));
  Chosen.push_back(Choice);
  if (CurEnabled && Choice != Current)
    ++Preemptions;
  return Choice;
}

void Harness::onYield(const SchedAccess &A) {
  ThreadState &T = Threads[Current];
  // The slow-path loop top (its only acquire load of UpdateSeq) carries
  // no local state across iterations, so observations from the previous
  // iteration are dead: resetting the hash here makes identical spin
  // iterations fingerprint-equal, which is what lets pruning collapse
  // unbounded spinning into one explored state.
  if (A.Op == SchedOp::LoadAcquire && A.Obj == SchedObject::UpdateSeq) {
    T.ObsHash = 0;
    if (T.RetriesThisOp > HardRetryBound)
      abortRun(ViolationKind::SeqlockBound,
               formatString("thread %d exceeded the seqlock retry bound "
                            "(%llu retries, bound %llu) in txCheckSlow",
                            Current,
                            static_cast<unsigned long long>(T.RetriesThisOp),
                            static_cast<unsigned long long>(HardRetryBound)));
  }
  T.Pending = A;
  Trace.push_back({Current, A, true});
  int Next = decide();
  if (Next != Current && Next >= 0) {
    int Prev = Current;
    Current = Next;
    swapcontext(&Threads[Prev].Ctx, &Threads[Next].Ctx);
    // Resumed: whoever switched back already restored Current == Prev.
  }
}

void Harness::onObserve(const SchedAccess &A) {
  ThreadState &T = Threads[Current];
  Trace.push_back({Current, A, false});
  T.ObsHash = hashMix(T.ObsHash, packAccess(A));
  if (A.Obj == SchedObject::SlowRetries && A.Op == SchedOp::RMWRelaxed)
    ++T.RetriesThisOp;
  // Every word either table ever holds is zero or a well-formed ID; a
  // nonzero word with wrong reserved bits is torn at the byte level.
  if ((A.Obj == SchedObject::Tary || A.Obj == SchedObject::Bary) &&
      A.Value != 0 && !isValidID(static_cast<uint32_t>(A.Value)))
    abortRun(ViolationKind::ReservedBits,
             formatString("thread %d observed %s[%llu] = 0x%08llx, which has "
                          "a corrupt reserved-bit pattern",
                          Current, schedObjectName(A.Obj),
                          static_cast<unsigned long long>(A.Index),
                          static_cast<unsigned long long>(A.Value)));
}

void Harness::abortRun(ViolationKind Kind, const std::string &Msg) {
  Run.Violated = true;
  Run.Fault.Kind = Kind;
  Run.Fault.Message = Msg;
  Run.Fault.Schedule = formatSchedule(Chosen);
  Run.Fault.Trace = formatTrace();
  Aborted = true;
  if (Current >= 0) {
    // Jump straight back to execute(); this fiber is never resumed, so
    // destructors on its stack do not run. Only the violation path pays
    // that (bounded) leak.
    int Prev = Current;
    Current = -1;
    swapcontext(&Threads[Prev].Ctx, &MainCtx);
  }
  // Only the main context (a bad forced step at the very first
  // decision) reaches here; execute() checks Aborted.
}

std::string Harness::describeOp(const OpRecord &R) const {
  return formatString("txCheck(site=%u, target=%llu) on thread %d -> %s "
                      "(retries %llu, window [%zu, %zu])",
                      R.Site, static_cast<unsigned long long>(R.Target),
                      R.Thread, checkResultName(R.Result),
                      static_cast<unsigned long long>(R.Retries), R.WindowLo,
                      R.WindowHi);
}

void Harness::assignLinearization(OpRecord &R) {
  size_t Lo = std::max(R.WindowLo, Threads[R.Thread].CurFrontier);
  size_t Hi = std::min(R.WindowHi, Lin.size() - 1);
  for (size_t P = Lo; P <= Hi; ++P) {
    if (evalCheck(*Lin[P], R.Site, R.Target) == R.Result) {
      // Greedy minimal assignment keeps the frontier as low as possible,
      // which is maximally permissive for every later operation — checks
      // interact only through real-time order, so this is exact.
      R.AssignedPolicy = P;
      // Only Pass results advance the real-time frontier. A violation
      // verdict halts the guest in the real system — nothing observes
      // anything after it, so it cannot impose ordering obligations on
      // later script ops (the protocol's fail-closed paths deliberately
      // report invalid targets without seqlock confirmation, which is
      // security-safe but not orderable). A Pass lets execution
      // continue, so later completed ops must linearize at or after it.
      if (R.Result == CheckResult::Pass)
        Frontier = std::max(Frontier, P);
      return;
    }
  }
  std::ostringstream OS;
  OS << "torn observation: " << describeOp(R)
     << " matches no linearization point in [" << Lo << ", " << Hi << "]:";
  for (size_t P = Lo; P <= Hi; ++P)
    OS << " policy" << P << "->"
       << checkResultName(evalCheck(*Lin[P], R.Site, R.Target));
  abortRun(ViolationKind::TornObservation, OS.str());
}

void Harness::awaitGrace() {
  // Park before the update until the grace condition holds. The yield
  // is the reclaim path's scheduling point (the same SchedObject the
  // real reclaimer's pendingReclaim poll brackets); isEnabled keeps the
  // updater off the schedule until graceElapsed(), so the loop spins at
  // most once per wake-up.
  WaitingGrace = true;
  while (!graceElapsed()) {
    SchedAccess A;
    A.Op = SchedOp::LoadAcquire;
    A.Obj = SchedObject::Reclaim;
    A.Index = 0;
    onYield(A);
  }
  WaitingGrace = false;
}

void Harness::runUpdater() {
  ThreadState &T = Threads[0];
  for (size_t U = 0; U < S.Updates.size(); ++U) {
    const SpecPolicy &P = S.Updates[U];
    T.OpCursor = U;
    T.ObsHash = 0;
    if (P.GraceBefore && !GSchedMutantSkipGrace)
      awaitGrace();
    if (P.QuiesceBefore)
      Tables->resetVersionEpoch();
    bool ExpectOk = !P.ExpectExhausted;
    // Linearizability bookkeeping: the update's invocation event. Any
    // check whose interval overlaps from here on may order after it.
    if (ExpectOk)
      ++StartedUpdates;
    auto GetTary = [&P](uint64_t Off) -> int64_t {
      auto It = P.TaryECN.find(Off);
      return It == P.TaryECN.end() ? -1 : int64_t(It->second);
    };
    auto GetBary = [&P](uint32_t Site) -> int64_t {
      auto It = P.BaryECN.find(Site);
      return It == P.BaryECN.end() ? -1 : int64_t(It->second);
    };
    TxUpdateStatus St;
    if (P.Retire)
      St = Tables->txUpdateRetire(P.TaryRetire, P.BaryRetireSites);
    else if (P.Incremental)
      St = Tables->txUpdateIncremental(P.TaryLimitBytes, P.TaryDirty, GetTary,
                                       P.BaryCount, P.BaryDirty, GetBary);
    else
      St = Tables->txUpdate(P.TaryLimitBytes, GetTary, P.BaryCount, GetBary);
    Run.UpdateStatuses.push_back(St);
    TxUpdateStatus Want = P.ExpectExhausted ? TxUpdateStatus::VersionExhausted
                                            : TxUpdateStatus::Ok;
    if (St != Want)
      abortRun(ViolationKind::UpdateStatus,
               formatString("update %zu returned %s but the scenario expects "
                            "%s",
                            U, St == TxUpdateStatus::Ok ? "Ok"
                                                        : "VersionExhausted",
                            Want == TxUpdateStatus::Ok ? "Ok"
                                                       : "VersionExhausted"));
    if (ExpectOk)
      ++CompletedUpdates;
  }
}

void Harness::runChecker(int Index) {
  ThreadState &T = Threads[Index];
  const std::vector<CheckOp> &Script = S.Checkers[Index - 1];
  for (size_t K = 0; K < Script.size(); ++K) {
    T.OpCursor = K;
    T.ObsHash = 0;
    T.RetriesThisOp = 0;
    T.CurWindowLo = CompletedUpdates;
    T.CurFrontier = Frontier;
    OpRecord R;
    R.Thread = Index;
    R.Site = Script[K].Site;
    R.Target = Script[K].Target;
    R.Result = Tables->txCheck(R.Site, R.Target);
    R.WindowLo = T.CurWindowLo;
    R.WindowHi = StartedUpdates;
    R.Retries = T.RetriesThisOp;
    assignLinearization(R);
    Run.Checks.push_back(R);
  }
}

void Harness::fiberMain(int Index) {
  if (Index == 0)
    runUpdater();
  else
    runChecker(Index);
  Threads[Index].Alive = false;
  Current = -1; // thread exit: the next decision preempts nobody
  int Next = decide();
  if (Next >= 0) {
    Current = Next;
    swapcontext(&Threads[Index].Ctx, &Threads[Next].Ctx);
  } else {
    swapcontext(&Threads[Index].Ctx, &MainCtx);
  }
  // Never resumed past this point.
}

RunRecord Harness::execute(const std::vector<int> &Prefix, RNG *Rng) {
  // Fresh tables and oracle state; stacks are reused across runs.
  Tables = std::make_unique<IDTables>(S.CodeCapacity, S.BaryCapacity);
  Run = RunRecord();
  Chosen.clear();
  Decisions.clear();
  Trace.clear();
  Preemptions = 0;
  Aborted = false;
  ForcedPrefix = Prefix;
  ForcedPos = 0;
  Rand = Rng;
  StartedUpdates = CompletedUpdates = Frontier = 0;

  // Pre-race setup runs uninstrumented: the hooks attach only once the
  // logical threads exist, so the initial install is not part of any
  // schedule and every run starts from the same installed state.
  if (S.ForceVersionedUpdates)
    Tables->testForceVersionedUpdates(S.ForceVersionedUpdates);
  {
    const SpecPolicy &P = S.Initial;
    auto GetTary = [&P](uint64_t Off) -> int64_t {
      auto It = P.TaryECN.find(Off);
      return It == P.TaryECN.end() ? -1 : int64_t(It->second);
    };
    auto GetBary = [&P](uint32_t Site) -> int64_t {
      auto It = P.BaryECN.find(Site);
      return It == P.BaryECN.end() ? -1 : int64_t(It->second);
    };
    TxUpdateStatus St =
        Tables->txUpdate(P.TaryLimitBytes, GetTary, P.BaryCount, GetBary);
    if (St != TxUpdateStatus::Ok) {
      Run.Violated = true;
      Run.Fault = {ViolationKind::Harness,
                   "initial policy install failed (VersionExhausted)", "",
                   ""};
      return Run;
    }
  }

  for (size_t I = 0; I < Threads.size(); ++I) {
    ThreadState &T = Threads[I];
    T.Alive = true;
    T.OpCursor = 0;
    T.ObsHash = 0;
    T.RetriesThisOp = 0;
    T.Pending = SchedAccess{};
    T.CurWindowLo = T.CurFrontier = 0;
    getcontext(&T.Ctx);
    T.Ctx.uc_stack.ss_sp = T.Stack.data();
    T.Ctx.uc_stack.ss_size = T.Stack.size();
    T.Ctx.uc_link = &MainCtx;
    makecontext(&T.Ctx, reinterpret_cast<void (*)()>(&Harness::fiberEntry), 1,
                int(I));
  }

  GActiveHarness = this;
  GSchedHooks = {&Harness::yieldHook, &Harness::observeHook, this};
  GSchedMutantReorderPhases = Opts.MutantReorderPhases;
  GSchedMutantSkipGrace = Opts.MutantSkipGrace;
  WaitingGrace = false;
  InRun = true;

  Current = -1;
  int First = decide(); // the run's first decision (preempts nobody)
  if (!Aborted && First >= 0) {
    Current = First;
    swapcontext(&MainCtx, &Threads[First].Ctx);
  }

  InRun = false;
  GSchedHooks = {};
  GSchedMutantReorderPhases = false;
  GSchedMutantSkipGrace = false;
  GActiveHarness = nullptr;

  Run.Schedule = formatSchedule(Chosen);
  Run.Decisions = Decisions.size();
  return Run;
}

std::string Harness::formatTrace() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Trace.size(); ++I) {
    const TraceEvent &E = Trace[I];
    OS << formatString("%5zu t%d %-5s %-9s %s", I, E.Thread,
                       E.IsYield ? "yield" : "obs", schedOpName(E.Access.Op),
                       schedObjectName(E.Access.Obj));
    if (E.Access.Obj == SchedObject::Tary || E.Access.Obj == SchedObject::Bary)
      OS << "[" << E.Access.Index << "]";
    if (!E.IsYield && E.Access.Op != SchedOp::FenceAcquire &&
        E.Access.Op != SchedOp::FenceSeqCst)
      OS << formatString(" = 0x%llx",
                         static_cast<unsigned long long>(E.Access.Value));
    OS << "\n";
  }
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

std::string schedcheck::formatSchedule(const std::vector<int> &Choices) {
  std::string Out;
  for (size_t I = 0; I < Choices.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(Choices[I]);
  }
  return Out;
}

std::vector<int> schedcheck::parseSchedule(const std::string &Schedule) {
  std::vector<int> Out;
  std::string Tok;
  std::istringstream IS(Schedule);
  while (std::getline(IS, Tok, ',')) {
    size_t Begin = Tok.find_first_not_of(" \t\n");
    if (Begin == std::string::npos)
      continue;
    size_t End = Tok.find_last_not_of(" \t\n");
    Tok = Tok.substr(Begin, End - Begin + 1);
    char *EndPtr = nullptr;
    long V = std::strtol(Tok.c_str(), &EndPtr, 10);
    // Junk parses to -1, which decide() rejects with a clear message.
    Out.push_back(EndPtr && *EndPtr == '\0' ? int(V) : -1);
  }
  return Out;
}

ExploreReport schedcheck::exploreExhaustive(const Scenario &S,
                                            const ExploreOptions &Opts) {
  ExploreReport Report;
  Harness H(S, Opts);
  // Fingerprint -> best (largest) preemption budget it was expanded
  // with. Revisits with no more budget cannot reach anything new.
  std::unordered_map<uint64_t, int> Expanded;
  std::vector<std::vector<int>> Stack;
  Stack.push_back({});
  while (!Stack.empty()) {
    if (Report.Schedules >= Opts.MaxSchedules) {
      Report.Truncated = true;
      break;
    }
    std::vector<int> Prefix = std::move(Stack.back());
    Stack.pop_back();
    RunRecord Run = H.execute(Prefix, nullptr);
    ++Report.Schedules;
    Report.Decisions += Run.Decisions;
    if (Run.Violated) {
      Report.Violations.push_back(Run.Fault);
      if (Opts.StopAtFirstViolation)
        break;
      continue; // do not branch below a violating prefix
    }
    const std::vector<Decision> &Ds = H.decisions();
    const std::vector<int> &Chosen = H.chosen();
    for (size_t I = Prefix.size(); I < Ds.size(); ++I) {
      const Decision &D = Ds[I];
      int Remaining = Opts.PreemptionBound - D.PreemptionsBefore;
      if (Opts.StateHashPruning) {
        auto It = Expanded.find(D.StateHash);
        if (It != Expanded.end() && It->second >= Remaining) {
          // The default suffix is preemption-free, so every later
          // decision of this run repeats a state already expanded with
          // at least this much budget: stop branching entirely.
          ++Report.PrunedStates;
          break;
        }
        int &Best = Expanded[D.StateHash];
        Best = std::max(Best, Remaining);
      }
      for (int Alt : D.Enabled) {
        if (Alt == D.Chosen)
          continue;
        int Cost = (D.CurrentEnabled && Alt != D.CurrentThread) ? 1 : 0;
        if (D.PreemptionsBefore + Cost > Opts.PreemptionBound)
          continue;
        std::vector<int> Next(Chosen.begin(), Chosen.begin() + I);
        Next.push_back(Alt);
        Stack.push_back(std::move(Next));
      }
    }
  }
  return Report;
}

ExploreReport schedcheck::exploreRandom(const Scenario &S, uint64_t Walks,
                                        uint64_t Seed,
                                        const ExploreOptions &Opts) {
  ExploreReport Report;
  Harness H(S, Opts);
  for (uint64_t W = 0; W < Walks; ++W) {
    RNG Rng(Seed + W);
    RunRecord Run = H.execute({}, &Rng);
    ++Report.Schedules;
    Report.Decisions += Run.Decisions;
    if (Run.Violated) {
      Report.Violations.push_back(Run.Fault);
      if (Opts.StopAtFirstViolation)
        break;
    }
  }
  return Report;
}

RunRecord schedcheck::runSchedule(const Scenario &S,
                                  const std::string &Schedule,
                                  const ExploreOptions &Opts) {
  Harness H(S, Opts);
  return H.execute(parseSchedule(Schedule), nullptr);
}

std::string schedcheck::minimizeSchedule(const Scenario &S,
                                         const std::string &Schedule,
                                         const ExploreOptions &Opts) {
  std::vector<int> Full = parseSchedule(Schedule);
  Harness H(S, Opts);
  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    std::vector<int> Prefix(Full.begin(), Full.begin() + Len);
    RunRecord Run = H.execute(Prefix, nullptr);
    if (Run.Violated)
      return formatSchedule(Prefix);
  }
  return Schedule;
}
