file(REMOVE_RECURSE
  "CMakeFiles/mcfi_support.dir/StringUtils.cpp.o"
  "CMakeFiles/mcfi_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/mcfi_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/mcfi_support.dir/TablePrinter.cpp.o.d"
  "libmcfi_support.a"
  "libmcfi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
