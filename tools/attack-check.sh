#!/bin/sh
# CI gate for the adversarial gauntlet:
#
#   - mcfi-attack synthesizes the exploit corpus against the built-in
#     hook-dispatch victim and runs every attack under all three VM
#     tiers; any Survived verdict or missed expectation fails, and at
#     least 4 attack classes must have a nonzero corpus;
#   - the same corpus then runs over every example that links as a
#     standalone program (non-linkable examples are skipped by the tool
#     with a note, mirroring mcfi-tierdiff);
#   - determinism: the JSON report for a fixed seed must be
#     byte-identical across two runs (same corpus, same verdict
#     sequence).
#
# Usage: tools/attack-check.sh [mcfi-attack-binary] [examples-dir]
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ATTACK=${1:-"$ROOT/build/tools/mcfi-attack"}
EXAMPLES=${2:-"$ROOT/examples"}
TMP=${TMPDIR:-/tmp}/attack-check.$$
trap 'rm -f "$TMP.a" "$TMP.b"' EXIT

echo "== built-in victim, all tiers, full class roster =="
if ! "$ATTACK" --min-classes 4; then
  echo "attack-check: FAILED (built-in victim)"
  exit 1
fi

echo "== determinism: same seed, byte-identical JSON =="
"$ATTACK" --json --seed 0xfeed --max-per-class 2 --tier threaded > "$TMP.a"
"$ATTACK" --json --seed 0xfeed --max-per-class 2 --tier threaded > "$TMP.b"
if ! cmp -s "$TMP.a" "$TMP.b"; then
  echo "attack-check: FAILED (corpus not deterministic for a fixed seed)"
  diff "$TMP.a" "$TMP.b" | head -5 || true
  exit 1
fi

# The >=4-class floor is asserted on the built-in victim above; example
# programs contribute whatever attack surface they actually have (some
# expose no function-pointer slots), bounded by a tighter fuel budget.
echo "== example victims =="
if ! "$ATTACK" --max-per-class 2 --fuel 5000000 "$EXAMPLES"/*.cpp; then
  echo "attack-check: FAILED (examples)"
  exit 1
fi
echo "attack-check: every synthesized attack lost"
