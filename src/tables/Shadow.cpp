//===- tables/Shadow.cpp - Versioned shadow of the installed policy -------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tables/Shadow.h"

#include "support/Assert.h"

#include <algorithm>

using namespace mcfi;

namespace {

/// Adjacent new IBTs cluster (a loaded module's entries are contiguous),
/// so nearby dirty offsets are coalesced into one range. Re-encoding an
/// unchanged entry at the same version is idempotent, which is what makes
/// covering small gaps safe; the tolerance just trades a few redundant
/// stores for fewer ranges.
constexpr uint64_t CoalesceGapBytes = 128;

} // namespace

void PolicyShadow::retireRange(uint64_t TaryBeginBytes, uint64_t TaryEndBytes,
                               const std::vector<uint32_t> &BarySites) {
  assert(Installed && "retiring entries before any install");
  std::erase_if(Image.TaryECN, [&](const auto &Entry) {
    return Entry.first >= TaryBeginBytes && Entry.first < TaryEndBytes;
  });
  for (uint32_t I : BarySites)
    if (I < Image.BaryECN.size())
      Image.BaryECN[I] = -1;
}

ShadowDelta PolicyShadow::computeDelta(const PolicyImage &Next) const {
  ShadowDelta D;

  if (!Installed) {
    D.Reason = "first install";
    return D;
  }
  if (Next.TaryLimitBytes < Image.TaryLimitBytes) {
    D.Reason = "code region shrank";
    return D;
  }
  if (Next.BaryCount < Image.BaryCount ||
      Next.BaryECN.size() < Image.BaryECN.size()) {
    D.Reason = "branch-site table shrank";
    return D;
  }

  // Every installed IBT must survive with the same ECN; a removed or
  // renumbered target means some live Tary entry changes value.
  for (const auto &[Offset, ECN] : Image.TaryECN) {
    auto It = Next.TaryECN.find(Offset);
    if (It == Next.TaryECN.end()) {
      D.Reason = "installed target removed";
      return D;
    }
    if (It->second != ECN) {
      D.Reason = "installed target changed class";
      return D;
    }
  }

  // Every installed Bary site must keep its exact value. This covers the
  // resolved-import case: a PLT site going Empty -> real class is a value
  // change at a live index, and rewriting it without a version bump opens
  // a window (between the GOT hook and the site's store) where guests
  // would spuriously halt.
  for (uint32_t I = 0; I != Image.BaryCount; ++I) {
    if (Next.BaryECN[I] != Image.BaryECN[I]) {
      D.Reason = "installed branch site changed";
      return D;
    }
  }

  // Pure extension: collect the new IBT offsets and new site indexes.
  D.FullRebuild = false;
  for (const auto &[Offset, ECN] : Next.TaryECN) {
    (void)ECN;
    if (!Image.TaryECN.count(Offset))
      D.TaryDirtyOffsets.push_back(Offset);
  }
  std::sort(D.TaryDirtyOffsets.begin(), D.TaryDirtyOffsets.end());
  D.TaryDirtyEntries = D.TaryDirtyOffsets.size();

  for (uint64_t Offset : D.TaryDirtyOffsets) {
    if (!D.TaryDirty.empty() &&
        Offset < D.TaryDirty.back().EndBytes + CoalesceGapBytes) {
      D.TaryDirty.back().EndBytes = Offset + 4;
    } else {
      D.TaryDirty.push_back({Offset, Offset + 4});
    }
  }

  for (uint32_t I = Image.BaryCount; I < Next.BaryCount; ++I)
    D.BaryDirty.push_back(I);

  return D;
}
