//===- metrics/Harness.h - Build-and-run experiment harness -----*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared experiment harness: compiles a workload (plus the rt
/// library) in instrumented or baseline mode, links it into a fresh
/// Machine, runs it, and reports retired instructions, wall time, and
/// code-size accounting. Every bench binary (Figs. 5/6, Tables 1-3, the
/// AIR and gadget tables) builds on this.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_METRICS_HARNESS_H
#define MCFI_METRICS_HARNESS_H

#include "linker/Linker.h"
#include "mlta/Mlta.h"
#include "runtime/Machine.h"
#include "toolchain/Toolchain.h"
#include "workload/Workload.h"

#include <memory>
#include <string>

namespace mcfi {

/// A fully linked program ready to run.
struct BuiltProgram {
  std::unique_ptr<Machine> M;
  std::unique_ptr<Linker> L;
  /// The MLTA refinement applied at link time (BuildSpec::Mlta). Owned
  /// here because LinkOptions::Refinement borrows it for the linker's
  /// whole lifetime — every later dlopen/dlclose regeneration reads it.
  std::unique_ptr<CFGRefinement> Refinement;
  /// The layered-map analysis behind Refinement (BuildSpec::Mlta);
  /// exposed for the audit/bench consumers' per-site FLTA-vs-MLTA view.
  std::unique_ptr<mlta::MltaResult> Mlta;
  uint64_t CodeBytes = 0; ///< total mapped code size
  std::string Error;
  bool Ok = false;
};

struct BuildSpec {
  bool Instrument = true;
  bool TailCalls = true;
  bool LinkRtLibrary = true;
  /// Rewriter check-scheduling / mask-sharing; output needs the
  /// semantic verifier tier.
  bool Optimize = false;
  /// Run the multi-layer type analysis over all translation units (rt
  /// library and ExtraAnalysisSources included) and link under the
  /// resulting refinement. The refined policy applies to every policy
  /// the linker generates, dlopen/dlclose regenerations included.
  bool Mlta = false;
  /// Sources that will be dlopen'd into this program later: analyzed
  /// with the static modules (so the layered map sees their stores and
  /// call sites) but NOT linked here. The caller still compiles and
  /// registerLibrary()s them separately.
  std::vector<std::string> ExtraAnalysisSources;
  uint64_t Seed = 0;
  /// Execution tier of the built Machine (all tiers RunResult-identical;
  /// the differential tier harness pins each one explicitly).
  ExecTier Tier = ExecTier::Trace;
};

/// Compiles \p Sources (each a translation unit) and links them.
BuiltProgram buildProgram(const std::vector<std::string> &Sources,
                          const BuildSpec &Spec = {});

/// One measured execution.
struct Measured {
  RunResult Result;
  double Seconds = 0;
  std::string Output;
};

/// Runs the program's _start to completion, timing it.
Measured measureRun(BuiltProgram &BP, uint64_t Fuel = ~0ull);

/// Runs a profile end-to-end in the given mode; convenience for the
/// overhead benches. Checks that the run exits cleanly.
Measured runProfile(const BenchProfile &Profile, bool Instrument,
                    std::string *OutputCheck = nullptr,
                    ExecTier Tier = ExecTier::Trace);

} // namespace mcfi

#endif // MCFI_METRICS_HARNESS_H
