//===- ctypes/Type.cpp - C type system implementation ---------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ctypes/Type.h"

#include "support/Assert.h"

#include <unordered_set>

using namespace mcfi;

//===----------------------------------------------------------------------===//
// Type predicates and printing
//===----------------------------------------------------------------------===//

Type::~Type() = default;

bool Type::isFunctionPointer() const {
  const auto *PT = dyn_cast<PointerType>(this);
  return PT && PT->getPointee()->isFunction();
}

namespace {

bool containsFnPtrImpl(const Type *T,
                       std::unordered_set<const Type *> &Visited) {
  if (!Visited.insert(T).second)
    return false;
  switch (T->getKind()) {
  case TypeKind::Void:
  case TypeKind::Int:
  case TypeKind::Float:
  case TypeKind::Function:
    return false;
  case TypeKind::Pointer:
    return cast<PointerType>(T)->getPointee()->isFunction();
  case TypeKind::Array:
    return containsFnPtrImpl(cast<ArrayType>(T)->getElement(), Visited);
  case TypeKind::Record: {
    const auto *RT = cast<RecordType>(T);
    if (!RT->isComplete())
      return false;
    for (const RecordField &F : RT->getFields())
      if (containsFnPtrImpl(F.FieldType, Visited))
        return true;
    return false;
  }
  }
  mcfi_unreachable("covered switch");
}

void printImpl(const Type *T, std::string &Out) {
  switch (T->getKind()) {
  case TypeKind::Void:
    Out += "void";
    return;
  case TypeKind::Int: {
    const auto *IT = cast<IntType>(T);
    if (!IT->isSigned())
      Out += "unsigned ";
    switch (IT->getBitWidth()) {
    case 8:
      Out += "char";
      return;
    case 16:
      Out += "short";
      return;
    case 32:
      Out += "int";
      return;
    case 64:
      Out += "long";
      return;
    default:
      Out += "int" + std::to_string(IT->getBitWidth());
      return;
    }
  }
  case TypeKind::Float:
    Out += cast<FloatType>(T)->getBitWidth() == 32 ? "float" : "double";
    return;
  case TypeKind::Pointer: {
    const Type *Pointee = cast<PointerType>(T)->getPointee();
    if (const auto *FT = dyn_cast<FunctionType>(Pointee)) {
      // Function pointers render as C-style "ret(*)(params)".
      printImpl(FT->getReturnType(), Out);
      Out += "(*)(";
      const auto &Params = FT->getParams();
      for (size_t I = 0; I != Params.size(); ++I) {
        if (I != 0)
          Out += ",";
        printImpl(Params[I], Out);
      }
      if (FT->isVariadic())
        Out += Params.empty() ? "..." : ",...";
      Out += ")";
      return;
    }
    printImpl(Pointee, Out);
    Out += "*";
    return;
  }
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(T);
    printImpl(AT->getElement(), Out);
    Out += "[" + std::to_string(AT->getCount()) + "]";
    return;
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(T);
    printImpl(FT->getReturnType(), Out);
    Out += "(";
    const auto &Params = FT->getParams();
    for (size_t I = 0; I != Params.size(); ++I) {
      if (I != 0)
        Out += ",";
      printImpl(Params[I], Out);
    }
    if (FT->isVariadic())
      Out += Params.empty() ? "..." : ",...";
    Out += ")";
    return;
  }
  case TypeKind::Record: {
    const auto *RT = cast<RecordType>(T);
    Out += RT->isUnion() ? "union " : "struct ";
    Out += RT->getTag();
    return;
  }
  }
  mcfi_unreachable("covered switch");
}

} // namespace

bool Type::containsFunctionPointer() const {
  std::unordered_set<const Type *> Visited;
  return containsFnPtrImpl(this, Visited);
}

std::string Type::print() const {
  std::string Out;
  printImpl(this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// RecordType
//===----------------------------------------------------------------------===//

void RecordType::setFields(std::vector<RecordField> NewFields) {
  assert(!Complete && "record completed twice");
  Fields = std::move(NewFields);
  Complete = true;
}

const RecordField *RecordType::findField(const std::string &Name) const {
  for (const RecordField &F : Fields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

TypeContext::TypeContext() {
  auto V = std::unique_ptr<VoidType>(new VoidType(*this));
  VoidTy = V.get();
  OwnedTypes.push_back(std::move(V));
}

TypeContext::~TypeContext() = default;

const Type *TypeContext::internStructural(const std::string &Key,
                                          std::unique_ptr<Type> T) {
  auto It = StructuralInterner.find(Key);
  if (It != StructuralInterner.end())
    return It->second;
  const Type *Raw = T.get();
  OwnedTypes.push_back(std::move(T));
  StructuralInterner.emplace(Key, Raw);
  return Raw;
}

const IntType *TypeContext::getInt(unsigned Bits, bool Signed) {
  std::string Key = "i" + std::to_string(Bits) + (Signed ? "s" : "u");
  return cast<IntType>(internStructural(
      Key, std::unique_ptr<Type>(new IntType(*this, Bits, Signed))));
}

const FloatType *TypeContext::getFloat(unsigned Bits) {
  std::string Key = "f" + std::to_string(Bits);
  return cast<FloatType>(
      internStructural(Key, std::unique_ptr<Type>(new FloatType(*this, Bits))));
}

const PointerType *TypeContext::getPointer(const Type *Pointee) {
  std::string Key =
      "p" + std::to_string(reinterpret_cast<uintptr_t>(Pointee));
  return cast<PointerType>(internStructural(
      Key, std::unique_ptr<Type>(new PointerType(*this, Pointee))));
}

const ArrayType *TypeContext::getArray(const Type *Element, uint64_t Count) {
  std::string Key = "a" + std::to_string(reinterpret_cast<uintptr_t>(Element)) +
                    "x" + std::to_string(Count);
  return cast<ArrayType>(internStructural(
      Key, std::unique_ptr<Type>(new ArrayType(*this, Element, Count))));
}

const FunctionType *
TypeContext::getFunction(const Type *Ret, std::vector<const Type *> Params,
                         bool Variadic) {
  std::string Key = "fn" + std::to_string(reinterpret_cast<uintptr_t>(Ret));
  for (const Type *P : Params)
    Key += "," + std::to_string(reinterpret_cast<uintptr_t>(P));
  if (Variadic)
    Key += ",...";
  return cast<FunctionType>(internStructural(
      Key, std::unique_ptr<Type>(
               new FunctionType(*this, Ret, std::move(Params), Variadic))));
}

RecordType *TypeContext::getRecord(const std::string &Tag, bool Union) {
  std::string Key = (Union ? "u:" : "s:") + Tag;
  auto It = Records.find(Key);
  if (It != Records.end())
    return It->second;
  auto R = std::unique_ptr<RecordType>(new RecordType(*this, Tag, Union));
  RecordType *Raw = R.get();
  OwnedTypes.push_back(std::move(R));
  Records.emplace(Key, Raw);
  // A new record invalidates nothing yet (it is incomplete), but its later
  // completion can change canonical forms, so completion clears the cache;
  // see canonicalSignature().
  return Raw;
}

RecordType *TypeContext::findRecord(const std::string &Tag, bool Union) {
  auto It = Records.find((Union ? "u:" : "s:") + Tag);
  return It == Records.end() ? nullptr : It->second;
}

//===----------------------------------------------------------------------===//
// Canonical signatures and structural equivalence
//===----------------------------------------------------------------------===//

void TypeContext::buildCanonical(const Type *T,
                                 std::vector<const RecordType *> &Stack,
                                 std::string &Out) {
  switch (T->getKind()) {
  case TypeKind::Void:
    Out += "v";
    return;
  case TypeKind::Int: {
    const auto *IT = cast<IntType>(T);
    Out += (IT->isSigned() ? "i" : "u") + std::to_string(IT->getBitWidth());
    return;
  }
  case TypeKind::Float:
    Out += "f" + std::to_string(cast<FloatType>(T)->getBitWidth());
    return;
  case TypeKind::Pointer:
    Out += "*";
    buildCanonical(cast<PointerType>(T)->getPointee(), Stack, Out);
    return;
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(T);
    Out += "[" + std::to_string(AT->getCount()) + "]";
    buildCanonical(AT->getElement(), Stack, Out);
    return;
  }
  case TypeKind::Function: {
    const auto *FT = cast<FunctionType>(T);
    Out += "(";
    for (const Type *P : FT->getParams()) {
      buildCanonical(P, Stack, Out);
      Out += ",";
    }
    if (FT->isVariadic())
      Out += "...";
    Out += ")->";
    buildCanonical(FT->getReturnType(), Stack, Out);
    return;
  }
  case TypeKind::Record: {
    const auto *RT = cast<RecordType>(T);
    // Recursive occurrence: emit a de Bruijn back-reference to the
    // enclosing record under expansion. This makes canonical forms of
    // isomorphic recursive types identical.
    for (size_t I = Stack.size(); I-- > 0;) {
      if (Stack[I] == RT) {
        Out += "\\" + std::to_string(Stack.size() - 1 - I);
        return;
      }
    }
    if (!RT->isComplete()) {
      // Incomplete records are only meaningful behind pointers; they are
      // equivalent only to themselves, so key on the tag.
      Out += (RT->isUnion() ? "U?" : "S?") + RT->getTag();
      return;
    }
    Stack.push_back(RT);
    Out += RT->isUnion() ? "U{" : "S{";
    for (const RecordField &F : RT->getFields()) {
      buildCanonical(F.FieldType, Stack, Out);
      Out += ";";
    }
    Out += "}";
    Stack.pop_back();
    return;
  }
  }
  mcfi_unreachable("covered switch");
}

std::string TypeContext::canonicalSignature(const Type *T) {
  auto It = CanonicalCache.find(T);
  if (It != CanonicalCache.end())
    return It->second;
  std::vector<const RecordType *> Stack;
  std::string Out;
  buildCanonical(T, Stack, Out);
  // Only cache canonical forms of types whose records are all complete;
  // conservatively, cache everything except when the form mentions an
  // incomplete record (marker "?").
  if (Out.find('?') == std::string::npos)
    CanonicalCache.emplace(T, Out);
  return Out;
}

namespace {

using RecordPair = std::pair<const RecordType *, const RecordType *>;

struct RecordPairHash {
  size_t operator()(const RecordPair &P) const {
    return std::hash<const void *>()(P.first) * 31 ^
           std::hash<const void *>()(P.second);
  }
};

/// Coinductive structural equivalence: the assumption set carries record
/// pairs currently under comparison, so recursive (including mutually
/// recursive) definitions compare by bisimulation rather than by
/// syntactic unrolling.
bool structEqImpl(const Type *A, const Type *B,
                  std::unordered_set<RecordPair, RecordPairHash> &Assumed) {
  if (A == B)
    return true;
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case TypeKind::Void:
    return true;
  case TypeKind::Int: {
    const auto *IA = cast<IntType>(A), *IB = cast<IntType>(B);
    return IA->getBitWidth() == IB->getBitWidth() &&
           IA->isSigned() == IB->isSigned();
  }
  case TypeKind::Float:
    return cast<FloatType>(A)->getBitWidth() ==
           cast<FloatType>(B)->getBitWidth();
  case TypeKind::Pointer:
    return structEqImpl(cast<PointerType>(A)->getPointee(),
                        cast<PointerType>(B)->getPointee(), Assumed);
  case TypeKind::Array: {
    const auto *AA = cast<ArrayType>(A), *AB = cast<ArrayType>(B);
    return AA->getCount() == AB->getCount() &&
           structEqImpl(AA->getElement(), AB->getElement(), Assumed);
  }
  case TypeKind::Function: {
    const auto *FA = cast<FunctionType>(A), *FB = cast<FunctionType>(B);
    if (FA->isVariadic() != FB->isVariadic() ||
        FA->getParams().size() != FB->getParams().size())
      return false;
    if (!structEqImpl(FA->getReturnType(), FB->getReturnType(), Assumed))
      return false;
    for (size_t I = 0; I != FA->getParams().size(); ++I)
      if (!structEqImpl(FA->getParams()[I], FB->getParams()[I], Assumed))
        return false;
    return true;
  }
  case TypeKind::Record: {
    const auto *RA = cast<RecordType>(A), *RB = cast<RecordType>(B);
    if (RA->isUnion() != RB->isUnion())
      return false;
    if (!RA->isComplete() || !RB->isComplete())
      return false; // incomplete records are equivalent only to themselves
    if (!Assumed.insert({RA, RB}).second)
      return true; // already comparing this pair: assume equal
    if (RA->getFields().size() != RB->getFields().size())
      return false;
    for (size_t I = 0; I != RA->getFields().size(); ++I)
      if (!structEqImpl(RA->getFields()[I].FieldType,
                        RB->getFields()[I].FieldType, Assumed))
        return false;
    return true;
  }
  }
  mcfi_unreachable("covered switch");
}

} // namespace

bool TypeContext::structurallyEquivalent(const Type *A, const Type *B) {
  std::unordered_set<RecordPair, RecordPairHash> Assumed;
  return structEqImpl(A, B, Assumed);
}

bool TypeContext::isPhysicalSubtype(const RecordType *Sub,
                                    const RecordType *Super) {
  if (Sub->isUnion() || Super->isUnion())
    return false;
  if (!Sub->isComplete() || !Super->isComplete())
    return false;
  const auto &SubF = Sub->getFields();
  const auto &SuperF = Super->getFields();
  if (SuperF.size() > SubF.size())
    return false;
  for (size_t I = 0; I != SuperF.size(); ++I)
    if (!structurallyEquivalent(SubF[I].FieldType, SuperF[I].FieldType))
      return false;
  return true;
}

bool TypeContext::calleeMatchesPointer(const FunctionType *PointerFn,
                                       const FunctionType *Callee) {
  if (structurallyEquivalent(PointerFn, Callee))
    return true;
  // Sec. 6 varargs rule: a variadic function-pointer type may invoke any
  // function whose return type matches and whose parameter types match the
  // fixed parameter types of the pointer.
  if (!PointerFn->isVariadic())
    return false;
  if (!structurallyEquivalent(PointerFn->getReturnType(),
                              Callee->getReturnType()))
    return false;
  const auto &Fixed = PointerFn->getParams();
  const auto &CalleeParams = Callee->getParams();
  if (CalleeParams.size() < Fixed.size())
    return false;
  for (size_t I = 0; I != Fixed.size(); ++I)
    if (!structurallyEquivalent(Fixed[I], CalleeParams[I]))
      return false;
  return true;
}
