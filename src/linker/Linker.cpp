//===- linker/Linker.cpp - MCFI static and dynamic linking ----------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "linker/Linker.h"

#include "module/Pending.h"
#include "rewriter/Rewriter.h"
#include "support/Assert.h"
#include "support/StringUtils.h"
#include "verifier/Verifier.h"

#include <algorithm>
#include <chrono>

using namespace mcfi;
using namespace mcfi::visa;

Linker::Linker(Machine &M, LinkOptions Opts) : M(M), Opts(Opts) {}

//===----------------------------------------------------------------------===//
// Bootstrap module
//===----------------------------------------------------------------------===//

MCFIObject Linker::makeBootstrap() {
  PendingModule PM;
  PM.Name = "bootstrap";

  auto mk = [](Opcode Op) {
    Instr I;
    I.Op = Op;
    return I;
  };

  // _start: call main; exit(r0).
  {
    AsmFunction Fn;
    Fn.Name = "_start";
    AsmItem Call = AsmItem::instr(mk(Opcode::Call));
    Call.Reloc = RelocKind::CallSym;
    Call.Symbol = "main";
    SiteMeta Meta;
    Meta.K = SiteMeta::Kind::DirectCall;
    Meta.Callee = "main";
    PM.Meta.push_back(Meta);
    Call.Meta = 0;
    Fn.Items.push_back(Call);
    {
      Instr I = mk(Opcode::Mov);
      I.Rd = RegArg0;
      I.Ra = RegRet;
      Fn.Items.push_back(AsmItem::instr(I));
    }
    {
      Instr I = mk(Opcode::Syscall);
      I.Imm = static_cast<uint64_t>(SyscallNo::Exit);
      Fn.Items.push_back(AsmItem::instr(I));
    }
    FunctionInfo Info;
    Info.Name = "_start";
    Info.TypeSig = "()->v";
    Info.PrettyType = "void()";
    PM.FunctionInfos.push_back(Info);
    PM.Functions.push_back(std::move(Fn));
  }

  // sig$return: the sigreturn trampoline signal handlers return to.
  {
    AsmFunction Fn;
    Fn.Name = "sig$return";
    Instr I = mk(Opcode::Syscall);
    I.Imm = static_cast<uint64_t>(SyscallNo::SigReturn);
    Fn.Items.push_back(AsmItem::instr(I));
    FunctionInfo Info;
    Info.Name = "sig$return";
    Info.TypeSig = "()->v";
    Info.PrettyType = "void()";
    PM.FunctionInfos.push_back(Info);
    PM.Functions.push_back(std::move(Fn));
  }

  if (Opts.InstrumentBootstrap)
    instrumentModule(PM);
  return finalizeObject(std::move(PM));
}

//===----------------------------------------------------------------------===//
// Relocation
//===----------------------------------------------------------------------===//

bool Linker::resolveModule(int Index, std::string &Error) {
  MappedModule &Mod = M.module(Index);
  const MCFIObject &Obj = *Mod.Obj;

  auto findFunc = [&](const std::string &Sym) -> uint64_t {
    return M.findFunction(Sym);
  };
  auto findLocalData = [&](const std::string &Sym) -> uint64_t {
    auto It = Obj.DataSymbols.find(Sym);
    return It == Obj.DataSymbols.end() ? 0 : Mod.DataBase + It->second;
  };

  for (const RelocEntry &R : Obj.Relocs) {
    switch (R.Kind) {
    case RelocKind::None:
      break;
    case RelocKind::FuncAddr64: {
      uint64_t Addr = findFunc(R.Symbol);
      if (!Addr) {
        Error = "unresolved function address: " + R.Symbol;
        return false;
      }
      M.patchCode64(Mod.CodeBase + R.Offset, Addr);
      break;
    }
    case RelocKind::GlobalAddr64:
    case RelocKind::GotSlot64: {
      uint64_t Addr = findLocalData(R.Symbol);
      if (!Addr) {
        Error = "unresolved data symbol: " + R.Symbol;
        return false;
      }
      M.patchCode64(Mod.CodeBase + R.Offset, Addr);
      break;
    }
    case RelocKind::CallSym: {
      // Direct call: resolve to the definition if loaded, else to this
      // module's own instrumented PLT entry.
      uint64_t Target = findFunc(R.Symbol);
      if (!Target)
        Target = findFunc("plt$" + R.Symbol) == 0
                     ? 0
                     : M.findFunction("plt$" + R.Symbol);
      // Prefer the local PLT when the symbol is an import of this module
      // (dynamic binding through the GOT even if some module already
      // defines it — keeps lazy library replacement possible).
      for (const std::string &Imp : Obj.Imports) {
        if (Imp == R.Symbol) {
          if (const FunctionInfo *Plt = Obj.findFunction("plt$" + R.Symbol))
            Target = Mod.CodeBase + Plt->CodeOffset;
          break;
        }
      }
      if (!Target) {
        Error = "unresolved call target: " + R.Symbol;
        return false;
      }
      uint64_t InstrStart = Mod.CodeBase + R.Offset - 1;
      int64_t Rel = static_cast<int64_t>(Target) -
                    static_cast<int64_t>(InstrStart + 5);
      M.patchCode32(Mod.CodeBase + R.Offset,
                    static_cast<uint32_t>(static_cast<int32_t>(Rel)));
      break;
    }
    case RelocKind::JumpTable64:
    case RelocKind::CodeAddr64:
      // Module-relative code offset -> absolute address.
      if (R.Kind == RelocKind::JumpTable64)
        M.patchCode64(Mod.CodeBase + R.Offset, Mod.CodeBase + R.Addend);
      else
        M.patchCode64(Mod.CodeBase + R.Offset, Mod.CodeBase + R.Addend);
      break;
    case RelocKind::BaryIndex32:
      // Patched at CFG-install time (patchBaryIndexes).
      break;
    case RelocKind::DataFuncAddr64: {
      uint64_t Addr = findFunc(R.Symbol);
      if (!Addr) {
        Error = "unresolved function address in data: " + R.Symbol;
        return false;
      }
      uint8_t Bytes[8];
      for (unsigned B = 0; B != 8; ++B)
        Bytes[B] = static_cast<uint8_t>(Addr >> (8 * B));
      M.writeDataBytes(Mod.DataBase + R.Offset, Bytes, 8);
      break;
    }
    case RelocKind::DataGlobalAddr64: {
      uint64_t Addr = findLocalData(R.Symbol);
      if (!Addr) {
        Error = "unresolved data symbol in data: " + R.Symbol;
        return false;
      }
      uint8_t Bytes[8];
      for (unsigned B = 0; B != 8; ++B)
        Bytes[B] = static_cast<uint8_t>(Addr >> (8 * B));
      M.writeDataBytes(Mod.DataBase + R.Offset, Bytes, 8);
      break;
    }
    }
  }
  return true;
}

void Linker::patchBaryIndexes(const CFGPolicy &NewPolicy) {
  BaryPatched.resize(M.modules().size(), false);
  for (size_t Idx = 0; Idx != M.modules().size(); ++Idx) {
    if (BaryPatched[Idx])
      continue;
    const MappedModule &Mod = M.modules()[Idx];
    uint32_t Base = NewPolicy.SiteIndexBase[Idx];
    for (const RelocEntry &R : Mod.Obj->Relocs) {
      if (R.Kind != RelocKind::BaryIndex32)
        continue;
      M.patchCode32(Mod.CodeBase + R.Offset, Base + R.SiteId);
    }
    BaryPatched[Idx] = true;
  }
}

void Linker::updateGotEntries() {
  // Fill every module's GOT slots with the current definitions. Runs
  // between the Tary and Bary phases of the installing TxUpdate.
  for (const MappedModule &Mod : M.modules()) {
    for (const std::string &Imp : Mod.Obj->Imports) {
      auto It = Mod.Obj->DataSymbols.find("got$" + Imp);
      if (It == Mod.Obj->DataSymbols.end())
        continue;
      uint64_t Addr = M.findFunction(Imp);
      if (!Addr)
        continue; // stays 0: calling it fails closed at the PLT check
      uint8_t Bytes[8];
      for (unsigned B = 0; B != 8; ++B)
        Bytes[B] = static_cast<uint8_t>(Addr >> (8 * B));
      M.writeDataBytes(Mod.DataBase + It->second, Bytes, 8);
    }
  }
}

bool Linker::installPolicy(CFGPolicy &&NewPolicy, uint32_t BatchModules) {
  // Flatten the policy to table coordinates so the shadow can diff it
  // against what the tables currently hold.
  PolicyImage Image;
  Image.TaryLimitBytes = M.codeTop() - Machine::CodeBase;
  Image.BaryCount = static_cast<uint32_t>(NewPolicy.BranchECN.size());
  Image.TaryECN.reserve(NewPolicy.TargetECN.size());
  for (const auto &[Addr, ECN] : NewPolicy.TargetECN)
    Image.TaryECN.emplace(Addr - Machine::CodeBase, ECN);
  Image.BaryECN = NewPolicy.BranchECN;

  ShadowDelta Delta;
  if (Opts.IncrementalUpdates)
    Delta = Shadow.computeDelta(Image);
  else
    Delta.Reason = "incremental updates disabled";

#ifndef NDEBUG
  // Cross-check the delta against the modules' declared IBT offsets:
  // every new Tary entry must be a potential indirect-branch target some
  // loaded module announced at finalize time.
  if (!Delta.FullRebuild) {
    for (uint64_t Off : Delta.TaryDirtyOffsets) {
      uint64_t Addr = Off + Machine::CodeBase;
      // Owning module = the highest CodeBase at or below the address.
      const MappedModule *Owner = nullptr;
      for (const MappedModule &Mod : M.modules())
        if (Mod.CodeBase <= Addr && (!Owner || Mod.CodeBase > Owner->CodeBase))
          Owner = &Mod;
      assert(Owner && "delta Tary offset outside every module");
      // Hand-assembled objects (some tests) skip finalizeObject and
      // carry no declared offsets; only finalized modules are checked.
      if (!Owner->Obj->Aux.IBTOffsets.empty()) {
        assert(std::binary_search(Owner->Obj->Aux.IBTOffsets.begin(),
                                  Owner->Obj->Aux.IBTOffsets.end(),
                                  Addr - Owner->CodeBase) &&
               "delta Tary offset is not a declared IBT");
      }
      (void)Owner;
    }
  }
#endif

  Policy = std::move(NewPolicy);

  TxUpdateStats Stats;
  Stats.BatchModules = BatchModules;
  auto Start = std::chrono::steady_clock::now();
  TxUpdateStatus Status;
  if (!Delta.FullRebuild) {
    Status = M.tables().txUpdateIncremental(
        Image.TaryLimitBytes, Delta.TaryDirty,
        [this](uint64_t Off) {
          return Policy.getTaryECN(Machine::CodeBase + Off);
        },
        Image.BaryCount, Delta.BaryDirty,
        [this](uint32_t Index) { return Policy.getBaryECN(Index); },
        [this]() { updateGotEntries(); }, &Stats);
  } else {
    Status = M.tables().txUpdate(
        Image.TaryLimitBytes,
        [this](uint64_t Off) {
          return Policy.getTaryECN(Machine::CodeBase + Off);
        },
        Image.BaryCount,
        [this](uint32_t Index) { return Policy.getBaryECN(Index); },
        [this]() { updateGotEntries(); }, &Stats);
  }
  if (Status != TxUpdateStatus::Ok) {
    LastError = "ID-table update refused: version space exhausted "
                "without a quiescence point";
    return false;
  }
  Stats.Micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - Start)
          .count();
  UpdateHistory.push_back(Stats);

  Shadow.install(std::move(Image), M.tables().currentVersion());
  M.setSetjmpRetSites(Policy.SetjmpRetSites);
  return true;
}

//===----------------------------------------------------------------------===//
// Static linking
//===----------------------------------------------------------------------===//

bool Linker::linkProgram(std::vector<MCFIObject> Objects,
                         std::string &Error) {
  // Bootstrap first so its branch-site indexes stay stable forever.
  std::vector<MCFIObject> All;
  All.push_back(makeBootstrap());
  for (MCFIObject &O : Objects)
    All.push_back(std::move(O));

  std::vector<int> Indexes;
  for (MCFIObject &O : All) {
    int Idx = M.mapModule(std::move(O));
    if (Idx < 0) {
      Error = "machine region exhausted while mapping modules";
      return false;
    }
    Indexes.push_back(Idx);
  }

  // Resolve after all modules are mapped (the static linker sees every
  // definition).
  for (int Idx : Indexes)
    if (!resolveModule(Idx, Error))
      return false;

  std::vector<LoadedModuleView> Views;
  for (const MappedModule &Mod : M.modules())
    Views.push_back({Mod.Obj.get(), Mod.CodeBase});

  if (Opts.InstallPolicy) {
    CFGPolicy NewPolicy =
        generateCFG(Views, Opts.Refinement, Opts.MergeWorkers);
    patchBaryIndexes(NewPolicy);

    if (Opts.Verify) {
      for (const MappedModule &Mod : M.modules()) {
        const uint8_t *Code = M.codePtr(Mod.CodeBase, Mod.Obj->Code.size());
        VerifyResult VR =
            verifyModule(Code, Mod.Obj->Code.size(), *Mod.Obj);
        if (!VR.Ok) {
          Error = "verification failed for module '" + Mod.Obj->Name +
                  "': " + VR.Errors.front();
          return false;
        }
      }
    }

    for (int Idx : Indexes)
      M.sealModule(Idx);
    if (!installPolicy(std::move(NewPolicy))) {
      Error = LastError;
      return false;
    }
  } else {
    for (int Idx : Indexes)
      M.sealModule(Idx);
    // Baseline still honours setjmp validation so longjmp keeps working.
    std::vector<uint64_t> Sites;
    for (const MappedModule &Mod : M.modules())
      for (const CallSiteInfo &CS : Mod.Obj->Aux.CallSites)
        if (CS.IsSetjmp)
          Sites.push_back(Mod.CodeBase + CS.RetSiteOffset);
    M.setSetjmpRetSites(std::move(Sites));
  }

  M.SigReturnAddr = M.findFunction("sig$return");
  M.DlopenHook = [this](Machine &, int64_t Id) { return dlopen(Id); };
  return true;
}

int Linker::registerLibrary(MCFIObject Obj) {
  Registry.push_back(std::move(Obj));
  return static_cast<int>(Registry.size() - 1);
}

//===----------------------------------------------------------------------===//
// Dynamic linking (the paper's three steps, batched)
//===----------------------------------------------------------------------===//

int64_t Linker::dlopen(int64_t RegistryId) {
  return dlopenOne(RegistryId).Handle;
}

DlopenResult Linker::dlopenOne(int64_t RegistryId) {
  PendingDlopen Req;
  Req.Id = RegistryId;

  std::unique_lock<std::mutex> Lk(BatchLock);
  BatchQueue.push_back(&Req);
  if (LeaderActive) {
    // Another loader is mid-install; it (or its successor leader) will
    // drain the queue — this request included — as one batch. Follower
    // threads just wait for their slot's result.
    BatchCv.wait(Lk, [&] { return Req.Done; });
    return Req.Result;
  }

  // Leader: drain the queue in rounds. Requests arriving while a round
  // installs are coalesced into the next round's batch.
  LeaderActive = true;
  while (!BatchQueue.empty()) {
    std::vector<PendingDlopen *> Batch(BatchQueue.begin(), BatchQueue.end());
    BatchQueue.clear();
    Lk.unlock();
    {
      std::lock_guard<std::mutex> Guard(DlopenLock);
      processBatch(Batch);
    }
    Lk.lock();
    for (PendingDlopen *P : Batch)
      P->Done = true;
    BatchCv.notify_all();
  }
  LeaderActive = false;
  return Req.Result;
}

std::vector<DlopenResult>
Linker::dlopenBatch(const std::vector<int64_t> &RegistryIds) {
  std::vector<PendingDlopen> Reqs(RegistryIds.size());
  std::vector<PendingDlopen *> Batch;
  Batch.reserve(Reqs.size());
  for (size_t I = 0; I != RegistryIds.size(); ++I) {
    Reqs[I].Id = RegistryIds[I];
    Batch.push_back(&Reqs[I]);
  }
  // Bypasses the combiner queue so the batch shape is exactly the input
  // (benchmarks and tests depend on exact install counts); DlopenLock
  // still serializes against combiner-driven installs.
  std::lock_guard<std::mutex> Guard(DlopenLock);
  processBatch(Batch);
  std::vector<DlopenResult> Out;
  Out.reserve(Reqs.size());
  for (const PendingDlopen &R : Reqs)
    Out.push_back(R.Result);
  return Out;
}

void Linker::processBatch(std::vector<PendingDlopen *> &Batch) {
  DlopenBatchStats BS;
  BS.Requested = static_cast<uint32_t>(Batch.size());

  // Step 1 per request: validate, map writable/not-executable, relocate.
  // A request failing here fails alone; the rest of the batch proceeds.
  std::vector<std::pair<PendingDlopen *, int>> Loaded;
  for (PendingDlopen *P : Batch) {
    if (P->Id < 0 || static_cast<size_t>(P->Id) >= Registry.size()) {
      LastError = "dlopen: unknown library id";
      continue;
    }
    int Idx = M.mapModule(Registry[static_cast<size_t>(P->Id)]);
    if (Idx < 0) {
      LastError = "dlopen: machine region exhausted";
      continue;
    }
    std::string Error;
    if (!resolveModule(Idx, Error)) {
      LastError = "dlopen: " + Error;
      continue;
    }
    Loaded.push_back({P, Idx});
  }
  BS.Loaded = static_cast<uint32_t>(Loaded.size());
  if (Loaded.empty()) {
    BatchHistory.push_back(BS);
    return;
  }

  // Step 2, once for the whole batch: regenerate the combined CFG, patch
  // every new module's Bary indexes while its pages are still writable,
  // verify, seal RX.
  std::vector<LoadedModuleView> Views;
  for (const MappedModule &Mod : M.modules())
    Views.push_back({Mod.Obj.get(), Mod.CodeBase});
  auto MergeStart = std::chrono::steady_clock::now();
  CFGPolicy NewPolicy = generateCFG(Views, Opts.Refinement, Opts.MergeWorkers);
  BS.MergeMicros = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - MergeStart)
                       .count();
  patchBaryIndexes(NewPolicy);

  if (Opts.Verify) {
    for (const auto &[P, Idx] : Loaded) {
      const MappedModule &Mod = M.modules()[static_cast<size_t>(Idx)];
      const uint8_t *Code = M.codePtr(Mod.CodeBase, Mod.Obj->Code.size());
      VerifyResult VR = verifyModule(Code, Mod.Obj->Code.size(), *Mod.Obj);
      if (!VR.Ok) {
        // Fail the whole batch closed: the policy was generated against
        // every mapped module, so installing it with one member
        // unverified would admit edges into unvetted code. Nothing
        // seals, nothing installs, every request reports failure.
        LastError = "dlopen: verification failed for module '" +
                    Mod.Obj->Name + "': " + VR.Errors.front();
        BatchHistory.push_back(BS);
        return;
      }
    }
  }
  for (const auto &[P, Idx] : Loaded)
    M.sealModule(Idx);

  // Step 3, once for the whole batch: ONE update transaction — one
  // version bump, one Tary→GOT→Bary pass — installs every new module's
  // IDs (GOT updates run inside the transaction, between the phases).
  if (!installPolicy(std::move(NewPolicy), BS.Loaded)) {
    LastError = "dlopen: " + LastError;
    BatchHistory.push_back(BS);
    return;
  }
  const TxUpdateStats &Install = UpdateHistory.back();
  BS.Installed = true;
  BS.Incremental = Install.Incremental;
  BS.InstallMicros = Install.Micros;
  for (const auto &[P, Idx] : Loaded) {
    P->Result.Handle = Idx;
    P->Result.SiteIndexBase = Policy.SiteIndexBase[static_cast<size_t>(Idx)];
    P->Result.CodeBase = M.modules()[static_cast<size_t>(Idx)].CodeBase;
  }
  BatchHistory.push_back(BS);
}
