# Empty dependencies file for test_vmsemantics.
# This may be replaced when dependencies are built.
