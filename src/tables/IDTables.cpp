//===- tables/IDTables.cpp - Bary/Tary tables and transactions ------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tables/IDTables.h"

#include "support/Assert.h"

using namespace mcfi;

IDTables::IDTables(uint64_t CodeCapacity, uint32_t BaryCapacity)
    : TaryEntries((CodeCapacity + 3) / 4), BaryEntries(BaryCapacity) {
  for (auto &E : TaryEntries)
    E.store(0, std::memory_order_relaxed);
  for (auto &E : BaryEntries)
    E.store(0, std::memory_order_relaxed);
}

uint32_t IDTables::taryRead(uint64_t CodeOffset) const {
  uint64_t Index = CodeOffset >> 2;
  if (Index >= TaryEntries.size())
    return 0;
  uint32_t Lo = TaryEntries[Index].load(std::memory_order_relaxed);
  unsigned Misalign = CodeOffset & 3;
  if (Misalign == 0)
    return Lo;
  // Misaligned read: synthesize the 4 bytes starting at the offset from
  // the two adjacent aligned entries. The reserved-bit pattern makes the
  // result invalid (its low byte is a non-low byte of a real ID, whose
  // LSB is 0), exactly as in the paper's byte-addressed table.
  uint32_t Hi = Index + 1 < TaryEntries.size()
                    ? TaryEntries[Index + 1].load(std::memory_order_relaxed)
                    : 0;
  unsigned Shift = 8 * Misalign;
  return (Lo >> Shift) | (Hi << (32 - Shift));
}

uint32_t IDTables::baryRead(uint32_t Index) const {
  if (Index >= BaryEntries.size())
    return 0;
  return BaryEntries[Index].load(std::memory_order_relaxed);
}

CheckResult IDTables::txCheck(uint32_t BaryIndex,
                              uint64_t TargetOffset) const {
  // Hot path mirrors Fig. 4's fast case exactly: one branch-ID load, one
  // target-ID load, one comparison. Everything else lives in the cold
  // slow path, as in the instrumented sequence.
  uint64_t Index = TargetOffset >> 2;
  if (__builtin_expect((TargetOffset & 3) == 0 && Index < TaryEntries.size() &&
                           BaryIndex < BaryEntries.size(),
                       1)) {
    uint32_t BranchID = BaryEntries[BaryIndex].load(std::memory_order_relaxed);
    uint32_t TargetID =
        TaryEntries[Index].load(std::memory_order_acquire);
    if (__builtin_expect(BranchID == TargetID, 1))
      // A correctly patched module always loads a valid branch ID (the
      // loader embeds the right Bary indexes); an invalid equal pair
      // means the site was never installed, which fails closed.
      return isValidID(BranchID) ? CheckResult::Pass
                                 : CheckResult::ViolationInvalid;
  }
  return txCheckSlow(BaryIndex, TargetOffset);
}

CheckResult IDTables::txCheckSlow(uint32_t BaryIndex,
                                  uint64_t TargetOffset) const {
  for (;;) {
    uint32_t BranchID = baryRead(BaryIndex);
    std::atomic_thread_fence(std::memory_order_acquire);
    uint32_t TargetID = taryRead(TargetOffset);
    if (BranchID == TargetID) {
      if (!isValidID(BranchID))
        return CheckResult::ViolationInvalid;
      return CheckResult::Pass;
    }
    // "Check:" label of Fig. 4: distinguish invalid target, version
    // race, and genuine ECN mismatch.
    if (!isValidID(TargetID))
      return CheckResult::ViolationInvalid;
    if (!sameVersionHalf(BranchID, TargetID))
      continue; // an update transaction is in flight; retry
    return CheckResult::ViolationECN;
  }
}

void IDTables::txUpdate(uint64_t TaryLimitBytes,
                        const std::function<int64_t(uint64_t)> &GetTaryECN,
                        uint32_t BaryCount,
                        const std::function<int64_t(uint32_t)> &GetBaryECN,
                        const std::function<void()> &BetweenTablesHook) {
  // Update transactions are serialized by a global lock (they are rare);
  // check transactions proceed concurrently and are synchronized only
  // through the version numbers embedded in the IDs.
  std::lock_guard<std::mutex> Guard(UpdateLock);

  uint32_t NewVersion =
      (Version.load(std::memory_order_relaxed) + 1) & MaxVersion;
  Version.store(NewVersion, std::memory_order_relaxed);
  Updates.fetch_add(1, std::memory_order_relaxed);

  assert(TaryLimitBytes <= taryCapacityBytes() && "code past table capacity");
  assert(BaryCount <= BaryEntries.size() && "too many branch sites");

  // Step 1: construct the new Tary table locally, then copy it in with
  // relaxed (movnti-style, weakly ordered) stores. Each 4-byte store is
  // individually atomic, which is the only requirement (Fig. 3's
  // copyTaryTable).
  uint64_t Limit = (TaryLimitBytes + 3) / 4;
  std::vector<uint32_t> NewTary(Limit, 0);
  for (uint64_t I = 0; I != Limit; ++I) {
    int64_t ECN = GetTaryECN(I * 4);
    if (ECN >= 0) {
      assert(ECN <= static_cast<int64_t>(MaxECN) && "ECN space exhausted");
      NewTary[I] = encodeID(static_cast<uint32_t>(ECN), NewVersion);
    }
  }
  for (uint64_t I = 0; I != Limit; ++I)
    TaryEntries[I].store(NewTary[I], std::memory_order_relaxed);

  // Memory write barrier: all Tary stores complete before any Bary store
  // (Fig. 3 line 5). This is the linearization point of the update.
  std::atomic_thread_fence(std::memory_order_seq_cst);

  // GOT entry updates are inserted between the two table updates and
  // serialized by another barrier (paper, PLT/GOT discussion).
  if (BetweenTablesHook) {
    BetweenTablesHook();
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // Step 2: update the Bary table.
  for (uint32_t I = 0; I != BaryCount; ++I) {
    int64_t ECN = GetBaryECN(I);
    uint32_t ID = 0;
    if (ECN >= 0) {
      assert(ECN <= static_cast<int64_t>(MaxECN) && "ECN space exhausted");
      ID = encodeID(static_cast<uint32_t>(ECN), NewVersion);
    }
    BaryEntries[I].store(ID, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}
