//===- tests/AnalyzerTest.cpp - C1/C2 analyzer rule tests ------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Focused tests for each false-positive elimination rule (UC, DC, MF,
/// SU, NF) and the K1/K2 residual classification of paper Sec. 6.
///
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "minic/Parser.h"
#include "minic/Sema.h"

#include <gtest/gtest.h>

using namespace mcfi;
using namespace mcfi::minic;

namespace {

AnalysisReport analyze(const std::string &Src,
                       const AnalyzerConfig &Config = {}) {
  std::vector<std::string> Errors;
  auto P = parseProgram(Src, Errors);
  EXPECT_TRUE(P) << (Errors.empty() ? "?" : Errors.front());
  if (!P)
    return {};
  EXPECT_TRUE(minic::analyze(*P, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return analyzeConditions(*P, Config);
}

const char *Preamble = R"(
  struct Base { long tag; long v; };
  struct Der { long tag; long v; long (*fp)(long); };
  long use(struct Base *b) { return b->v; }
)";

TEST(Analyzer, CleanProgramHasNoViolations) {
  AnalysisReport R = analyze(R"(
    long f(long x) { return x + 1; }
    long (*p)(long) = f;
    int main() { return (int)p(1); }
  )");
  EXPECT_EQ(R.VBE, 0u);
  EXPECT_EQ(R.C2Count, 0u);
}

TEST(Analyzer, UpcastEliminated) {
  AnalysisReport R = analyze(std::string(Preamble) + R"(
    long f(void) {
      struct Der d;
      return use((struct Base *)&d);
    }
  )");
  EXPECT_EQ(R.VBE, 1u);
  EXPECT_EQ(R.UC, 1u);
  EXPECT_EQ(R.VAE, 0u);
}

TEST(Analyzer, DowncastNeedsAttestedTag) {
  // The downcast feeds a *function-pointer* use, so only the DC rule can
  // eliminate it (NF would catch non-fp accesses on its own).
  std::string Src = std::string(Preamble) + R"(
    long f(struct Base *b) {
      if (b->tag == 1) return ((struct Der *)b)->fp(1);
      return 0;
    }
  )";
  // Without attestation the downcast is a residual violation...
  AnalysisReport Bare = analyze(Src);
  EXPECT_EQ(Bare.DC, 0u);
  EXPECT_EQ(Bare.VAE, 1u);
  // ...with it, the DC rule eliminates it.
  AnalyzerConfig Config;
  Config.TaggedAbstractStructs.insert("Base");
  AnalysisReport Attested = analyze(Src, Config);
  EXPECT_EQ(Attested.DC, 1u);
  EXPECT_EQ(Attested.VAE, 0u);
}

TEST(Analyzer, MallocAndFreeEliminated) {
  AnalysisReport R = analyze(std::string(Preamble) + R"(
    long f(void) {
      struct Der *d = (struct Der *)malloc(sizeof(struct Der));
      d->v = 1;
      long r = d->v;
      free(d);
      return r;
    }
  )");
  EXPECT_EQ(R.MF, 2u); // malloc-result cast + free-argument cast
  EXPECT_EQ(R.VAE, 0u);
}

TEST(Analyzer, NullUpdateEliminated) {
  AnalysisReport R = analyze(R"(
    long (*g)(long) = NULL;
    void reset(void) { g = NULL; }
  )");
  EXPECT_EQ(R.SU, 2u);
  EXPECT_EQ(R.VAE, 0u);
}

TEST(Analyzer, NonFpFieldAccessEliminated) {
  AnalysisReport R = analyze(std::string(Preamble) + R"(
    long f(void *q) {
      return ((struct Der *)q)->v; /* only the non-fp field is used */
    }
  )");
  EXPECT_EQ(R.NF, 1u);
  EXPECT_EQ(R.VAE, 0u);
}

TEST(Analyzer, FpFieldAccessAfterCastIsNotEliminated) {
  AnalysisReport R = analyze(std::string(Preamble) + R"(
    long f(void *q) {
      return ((struct Der *)q)->fp(3); /* the fp field IS used */
    }
  )");
  EXPECT_EQ(R.NF, 0u);
  EXPECT_EQ(R.VAE, 1u);
}

TEST(Analyzer, K1FunctionConstantOfWrongType) {
  AnalysisReport R = analyze(R"(
    typedef long (*Fn)(long);
    long victim(char *s) { return (long)s; }
    Fn p = (Fn)victim;
  )");
  EXPECT_EQ(R.K1, 1u);
  EXPECT_EQ(R.K2, 0u);
}

TEST(Analyzer, K2RoundTripThroughVoidStar) {
  AnalysisReport R = analyze(R"(
    typedef long (*Fn)(long);
    long f(long x) { return x; }
    void *stash;
    void save(void) { stash = (void *)f; }
    long load(long x) { Fn g = (Fn)stash; return g(x); }
  )");
  EXPECT_EQ(R.K1, 0u);
  EXPECT_EQ(R.K2, 2u);
}

TEST(Analyzer, UnionWithFpFieldIsImplicitViolation) {
  AnalysisReport R = analyze(R"(
    union Pun { long (*fp)(long); long raw; };
    long f(union Pun *p) { return p->fp(1); }
    long g(union Pun *p) { return p->raw; }
  )");
  // Accessing the fp member of a punning union is the paper's "union
  // type includes a function pointer field" case; the raw member alone
  // is not.
  EXPECT_EQ(R.VBE, 1u);
  EXPECT_EQ(R.K2, 1u);
}

TEST(Analyzer, CompatibleFpCastIsNotAViolation) {
  AnalysisReport R = analyze(R"(
    typedef long (*Fn)(long);
    long f(long x) { return x; }
    Fn p = (Fn)f; /* cast to the SAME type: structurally equivalent */
  )");
  EXPECT_EQ(R.VBE, 0u);
}

TEST(Analyzer, IntCastsWithoutFpAreIgnored) {
  AnalysisReport R = analyze(R"(
    int main() {
      long x = 5;
      int y = (int)x;
      char *p = (char *)x;
      long z = (long)p;
      return y + (int)z;
    }
  )");
  EXPECT_EQ(R.VBE, 0u);
}

TEST(Analyzer, UnannotatedAsmIsC2Violation) {
  AnalysisReport R = analyze(R"MC(
    void f(void) { __asm__("cpuid"); }
    void g(void) { __asm__("rep movsb" : g = "void(void)"); }
  )MC");
  ASSERT_EQ(R.C2.size(), 2u);
  EXPECT_EQ(R.C2Count, 1u); // only the unannotated one violates C2
}

} // namespace
