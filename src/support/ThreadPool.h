//===- support/ThreadPool.h - Small shared worker pool ----------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, lazily grown worker pool with one primitive: parallelFor
/// over an index range in fixed-size chunks. Built for the parallel
/// CFG-merge pipeline, whose determinism contract is that workers only
/// ever write *index-addressed slots* — which worker executes which
/// chunk never influences the output, so the pool needs no ordering
/// guarantees beyond completion.
///
/// The pool is process-global and persistent (threads are reused across
/// merges; spawning per merge would eat the speedup on millisecond-scale
/// generations). One parallelFor runs at a time; concurrent callers
/// serialize on the job lock, which matches the linker's update
/// serialization anyway.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_SUPPORT_THREADPOOL_H
#define MCFI_SUPPORT_THREADPOOL_H

#include <cstddef>
#include <functional>

namespace mcfi {

class ThreadPool {
public:
  /// The shared pool. Threads are created on demand, up to the hardware
  /// concurrency, and live for the process lifetime.
  static ThreadPool &shared();

  /// Runs \p Body(Begin, End) over [0, N) split into chunks of \p Grain
  /// indexes, on up to \p Workers threads (the calling thread included).
  /// Workers <= 1, a small N, or an unavailable pool all degrade to an
  /// inline loop — same result by construction, since chunks are
  /// disjoint and Body must only write slots addressed by index.
  void parallelFor(unsigned Workers, size_t N, size_t Grain,
                   const std::function<void(size_t, size_t)> &Body);

private:
  ThreadPool() = default;
};

} // namespace mcfi

#endif // MCFI_SUPPORT_THREADPOOL_H
