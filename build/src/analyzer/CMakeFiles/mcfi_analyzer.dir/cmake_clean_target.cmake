file(REMOVE_RECURSE
  "libmcfi_analyzer.a"
)
