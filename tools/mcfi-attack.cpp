//===- tools/mcfi-attack.cpp - Adversarial attack-corpus gauntlet ----------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// mcfi-attack: synthesizes an exploit corpus per victim program and
/// asserts every attack loses under every VM execution tier.
///
///   mcfi-attack [options] [example.cpp ...]
///     With no files: attacks the built-in hook-dispatch victim. With
///     files: extracts each file's embedded MiniC modules, links them as
///     one instrumented program, and attacks that too (files that do not
///     link standalone are skipped with a note).
///
///   Options:
///     --seed N          corpus seed (default 0x5eed); same seed, same
///                       corpus, same verdict sequence
///     --class NAME      restrict to one attack class (repeatable)
///     --tier NAME       restrict to one tier (repeatable):
///                       interpreter | threaded | trace
///     --max-per-class N attacks per class per (victim, tier), default 4
///     --fuel N          instruction budget per attack run
///     --min-classes N   fail unless >= N classes have a nonzero corpus
///     --json            emit the machine-readable report
///     --list            print attack classes and verdicts, then exit
///
/// Exit status is nonzero when any attack Survived, any expectation was
/// missed, or the nonzero-class floor was not met.
///
//===----------------------------------------------------------------------===//

#include "attack/Attack.h"
#include "metrics/Harness.h"
#include "support/TablePrinter.h"
#include "tools/ToolCommon.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace mcfi;
using namespace mcfi::attack;
using namespace mcfi::tools;

namespace {

const char *tierName(ExecTier T) {
  switch (T) {
  case ExecTier::Interpreter:
    return "interpreter";
  case ExecTier::Threaded:
    return "threaded";
  case ExecTier::Trace:
    return "trace";
  }
  return "?";
}

bool parseTier(const std::string &Name, ExecTier &Out) {
  for (ExecTier T :
       {ExecTier::Interpreter, ExecTier::Threaded, ExecTier::Trace})
    if (Name == tierName(T)) {
      Out = T;
      return true;
    }
  return false;
}

void listClasses() {
  std::printf("attack classes:\n");
  for (unsigned I = 0; I != NumAttackClasses; ++I)
    std::printf("  %s\n", className(static_cast<AttackClass>(I)));
  std::printf("verdicts:\n");
  for (unsigned I = 0; I != NumVerdicts; ++I)
    std::printf("  %s\n", verdictName(static_cast<Verdict>(I)));
}

} // namespace

int main(int argc, char **argv) {
  CorpusOptions Opts;
  unsigned MinClasses = 0;
  bool Json = false;
  std::vector<std::string> Files;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= argc)
        usage("mcfi-attack: missing argument");
      return argv[++I];
    };
    if (Arg == "--seed")
      Opts.Seed = std::strtoull(Next().c_str(), nullptr, 0);
    else if (Arg == "--class") {
      AttackClass C;
      if (!parseClassName(Next(), C))
        usage("mcfi-attack: unknown class (see --list)");
      Opts.Classes.push_back(C);
    } else if (Arg == "--tier") {
      static bool Cleared = false;
      if (!Cleared) {
        Opts.Tiers.clear();
        Cleared = true;
      }
      ExecTier T;
      if (!parseTier(Next(), T))
        usage("mcfi-attack: unknown tier");
      Opts.Tiers.push_back(T);
    } else if (Arg == "--max-per-class")
      Opts.MaxPerClass =
          static_cast<unsigned>(std::strtoul(Next().c_str(), nullptr, 0));
    else if (Arg == "--fuel")
      Opts.Fuel = std::strtoull(Next().c_str(), nullptr, 0);
    else if (Arg == "--min-classes")
      MinClasses =
          static_cast<unsigned>(std::strtoul(Next().c_str(), nullptr, 0));
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--list") {
      listClasses();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-')
      usage("mcfi-attack: unknown option");
    else
      Files.push_back(Arg);
  }

  for (const std::string &Path : Files) {
    std::string Text;
    if (!readFileText(Path, Text)) {
      std::fprintf(stderr, "mcfi-attack: cannot read %s\n", Path.c_str());
      return 1;
    }
    VictimSpec V;
    V.Name = baseName(Path);
    for (const ModuleSource &M : extractModules(Text))
      V.Sources.push_back(M.Source);
    if (V.Sources.empty()) {
      std::fprintf(stderr, "mcfi-attack: %s: no embedded modules, skipped\n",
                   V.Name.c_str());
      continue;
    }
    // Probe-link once: examples that are not standalone programs (PLT
    // imports resolved only by their own dlopen registry, deliberate
    // compile errors) are skipped, mirroring mcfi-tierdiff.
    BuildSpec Probe;
    Probe.LinkRtLibrary = false;
    BuiltProgram BP = buildProgram(V.Sources, Probe);
    if (!BP.Ok) {
      std::fprintf(stderr, "mcfi-attack: %s: not standalone (%s), skipped\n",
                   V.Name.c_str(), BP.Error.c_str());
      continue;
    }
    Opts.Victims.push_back(std::move(V));
  }

  CorpusReport Rep = runCorpus(Opts);

  if (Json) {
    std::printf("%s\n", corpusJSON(Rep, Opts).c_str());
  } else {
    TablePrinter TP;
    TP.addRow({"class", "corpus", "killed", "allowed", "survived"});
    for (const auto &[C, S] : Rep.Classes)
      TP.addRow({className(C), std::to_string(S.Corpus),
                 std::to_string(S.Killed), std::to_string(S.Allowed),
                 std::to_string(S.Survived)});
    TP.print();
    std::printf("attacks: %zu  survivors: %llu  mismatches: %llu  "
                "AIR: %.4f  %s\n",
                Rep.Records.size(), (unsigned long long)Rep.Survivors,
                (unsigned long long)Rep.ExpectationMismatches, Rep.AIR,
                Rep.Ok ? "OK" : "FAILED");
    for (const AttackRecord &R : Rep.Records)
      if (R.V == Verdict::Survived)
        std::fprintf(stderr, "SURVIVED [%s/%s] %s %s: %s\n", className(R.Class),
                     tierName(R.Tier), R.Victim.c_str(), R.Name.c_str(),
                     R.Detail.c_str());
  }

  if (!Rep.Error.empty()) {
    std::fprintf(stderr, "mcfi-attack: %s\n", Rep.Error.c_str());
    return 1;
  }
  if (MinClasses) {
    unsigned NonZero = 0;
    for (const auto &[C, S] : Rep.Classes) {
      (void)C;
      if (S.Corpus)
        ++NonZero;
    }
    if (NonZero < MinClasses) {
      std::fprintf(stderr,
                   "mcfi-attack: only %u attack classes have a nonzero "
                   "corpus (floor %u)\n",
                   NonZero, MinClasses);
      return 1;
    }
  }
  return Rep.Ok ? 0 : 1;
}
