//===- tests/CtypesTest.cpp - C type system tests --------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ctypes/Layout.h"
#include "ctypes/Type.h"
#include "ctypes/TypeParser.h"

#include <gtest/gtest.h>

using namespace mcfi;

namespace {

class TypesFixture : public ::testing::Test {
protected:
  TypeContext Ctx;
};

//===----------------------------------------------------------------------===//
// Interning and basic structure
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, ScalarInterning) {
  EXPECT_EQ(Ctx.getInt32(), Ctx.getInt(32, true));
  EXPECT_NE(Ctx.getInt32(), Ctx.getInt(32, false));
  EXPECT_NE(Ctx.getInt32(), Ctx.getInt64());
  EXPECT_EQ(Ctx.getPointer(Ctx.getInt32()), Ctx.getPointer(Ctx.getInt32()));
  EXPECT_EQ(Ctx.getFunction(Ctx.getVoid(), {Ctx.getInt32()}, false),
            Ctx.getFunction(Ctx.getVoid(), {Ctx.getInt32()}, false));
  EXPECT_NE(Ctx.getFunction(Ctx.getVoid(), {Ctx.getInt32()}, false),
            Ctx.getFunction(Ctx.getVoid(), {Ctx.getInt32()}, true));
}

TEST_F(TypesFixture, RecordsAreNominalPerTag) {
  RecordType *A = Ctx.getRecord("A");
  EXPECT_EQ(A, Ctx.getRecord("A"));
  EXPECT_NE(A, Ctx.getRecord("B"));
  EXPECT_NE(static_cast<Type *>(Ctx.getRecord("U", true)),
            static_cast<Type *>(Ctx.getRecord("U", false)));
}

//===----------------------------------------------------------------------===//
// Structural equivalence (the paper's matching relation)
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, EquivalenceUnfoldsRecordNames) {
  // Two differently named structs with identical bodies are equivalent.
  RecordType *A = Ctx.getRecord("NameA");
  RecordType *B = Ctx.getRecord("NameB");
  A->setFields({{"x", Ctx.getInt64()}, {"y", Ctx.getPointer(Ctx.getChar())}});
  B->setFields({{"u", Ctx.getInt64()}, {"v", Ctx.getPointer(Ctx.getChar())}});
  EXPECT_TRUE(Ctx.structurallyEquivalent(A, B));

  RecordType *C = Ctx.getRecord("NameC");
  C->setFields({{"x", Ctx.getInt32()}});
  EXPECT_FALSE(Ctx.structurallyEquivalent(A, C));
}

TEST_F(TypesFixture, RecursiveRecordsCompareCoinductively) {
  // struct L1 { long v; struct L1 *next; } ==
  // struct L2 { long v; struct L2 *next; }
  RecordType *L1 = Ctx.getRecord("L1");
  RecordType *L2 = Ctx.getRecord("L2");
  L1->setFields({{"v", Ctx.getInt64()}, {"next", Ctx.getPointer(L1)}});
  L2->setFields({{"v", Ctx.getInt64()}, {"next", Ctx.getPointer(L2)}});
  EXPECT_TRUE(Ctx.structurallyEquivalent(L1, L2));

  // Mutually recursive pair unrolls to the same infinite tree as L1.
  RecordType *M1 = Ctx.getRecord("M1");
  RecordType *M2 = Ctx.getRecord("M2");
  M1->setFields({{"v", Ctx.getInt64()}, {"next", Ctx.getPointer(M2)}});
  M2->setFields({{"v", Ctx.getInt64()}, {"next", Ctx.getPointer(M1)}});
  EXPECT_TRUE(Ctx.structurallyEquivalent(M1, M2));
  EXPECT_TRUE(Ctx.structurallyEquivalent(L1, M1));
}

TEST_F(TypesFixture, EquivalenceIsAnEquivalenceRelation) {
  std::vector<const Type *> Sample = {
      Ctx.getInt32(),
      Ctx.getInt64(),
      Ctx.getPointer(Ctx.getInt64()),
      Ctx.getFunction(Ctx.getInt64(), {Ctx.getInt64()}, false),
      Ctx.getFunction(Ctx.getInt64(), {Ctx.getInt64()}, true),
      Ctx.getPointer(
          Ctx.getFunction(Ctx.getVoid(), {Ctx.getPointer(Ctx.getChar())},
                          false)),
      Ctx.getArray(Ctx.getInt32(), 4),
  };
  for (const Type *A : Sample) {
    EXPECT_TRUE(Ctx.structurallyEquivalent(A, A)); // reflexive
    for (const Type *B : Sample) {
      EXPECT_EQ(Ctx.structurallyEquivalent(A, B),
                Ctx.structurallyEquivalent(B, A)); // symmetric
      for (const Type *C : Sample) {
        if (Ctx.structurallyEquivalent(A, B) &&
            Ctx.structurallyEquivalent(B, C)) {
          EXPECT_TRUE(Ctx.structurallyEquivalent(A, C)); // transitive
        }
      }
    }
  }
}

TEST_F(TypesFixture, UnionVsStructDiffer) {
  RecordType *S = Ctx.getRecord("SU1");
  RecordType *U = Ctx.getRecord("SU2", true);
  S->setFields({{"x", Ctx.getInt64()}});
  U->setFields({{"x", Ctx.getInt64()}});
  EXPECT_FALSE(Ctx.structurallyEquivalent(S, U));
}

//===----------------------------------------------------------------------===//
// The variadic matching rule (Sec. 6)
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, VariadicPointerMatchesFixedPrefix) {
  const auto *VarPtr = cast<FunctionType>(
      Ctx.getFunction(Ctx.getInt32(), {Ctx.getInt32()}, true));
  // "int (*)(int, ...)" may call any address-taken function whose return
  // type is int and whose first parameter is int.
  const auto *F1 = cast<FunctionType>(
      Ctx.getFunction(Ctx.getInt32(), {Ctx.getInt32()}, true));
  const auto *F2 = cast<FunctionType>(Ctx.getFunction(
      Ctx.getInt32(), {Ctx.getInt32(), Ctx.getPointer(Ctx.getChar())},
      false));
  const auto *F3 = cast<FunctionType>(
      Ctx.getFunction(Ctx.getInt32(), {Ctx.getInt64()}, false));
  const auto *F4 = cast<FunctionType>(
      Ctx.getFunction(Ctx.getVoid(), {Ctx.getInt32()}, false));
  EXPECT_TRUE(Ctx.calleeMatchesPointer(VarPtr, F1));
  EXPECT_TRUE(Ctx.calleeMatchesPointer(VarPtr, F2));
  EXPECT_FALSE(Ctx.calleeMatchesPointer(VarPtr, F3)); // first param differs
  EXPECT_FALSE(Ctx.calleeMatchesPointer(VarPtr, F4)); // return differs

  // Non-variadic pointers require exact equivalence.
  const auto *ExactPtr = cast<FunctionType>(
      Ctx.getFunction(Ctx.getInt32(), {Ctx.getInt32()}, false));
  EXPECT_FALSE(Ctx.calleeMatchesPointer(ExactPtr, F2));
}

//===----------------------------------------------------------------------===//
// Physical subtyping (the UC rule's foundation)
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, PhysicalSubtypePrefix) {
  RecordType *Base = Ctx.getRecord("PBase");
  RecordType *Der = Ctx.getRecord("PDer");
  RecordType *Other = Ctx.getRecord("POther");
  Base->setFields({{"tag", Ctx.getInt64()}, {"v", Ctx.getInt64()}});
  Der->setFields({{"tag", Ctx.getInt64()},
                  {"v", Ctx.getInt64()},
                  {"extra", Ctx.getPointer(Ctx.getChar())}});
  Other->setFields({{"tag", Ctx.getInt32()}});
  EXPECT_TRUE(Ctx.isPhysicalSubtype(Der, Base));
  EXPECT_FALSE(Ctx.isPhysicalSubtype(Base, Der));
  EXPECT_TRUE(Ctx.isPhysicalSubtype(Base, Base));
  EXPECT_FALSE(Ctx.isPhysicalSubtype(Der, Other));
}

//===----------------------------------------------------------------------===//
// Function-pointer discovery
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, ContainsFunctionPointer) {
  const Type *Fp =
      Ctx.getPointer(Ctx.getFunction(Ctx.getVoid(), {}, false));
  RecordType *WithFp = Ctx.getRecord("WithFp");
  WithFp->setFields({{"v", Ctx.getInt64()}, {"cb", Fp}});
  RecordType *Plain = Ctx.getRecord("Plain");
  Plain->setFields({{"v", Ctx.getInt64()}});
  RecordType *Rec = Ctx.getRecord("RecFp");
  Rec->setFields({{"next", Ctx.getPointer(Rec)}, {"cb", Fp}});

  EXPECT_TRUE(Fp->isFunctionPointer());
  EXPECT_TRUE(WithFp->containsFunctionPointer());
  EXPECT_FALSE(Plain->containsFunctionPointer());
  EXPECT_TRUE(Rec->containsFunctionPointer());
  EXPECT_TRUE(Ctx.getArray(Fp, 3)->containsFunctionPointer());
}

//===----------------------------------------------------------------------===//
// Type parser
//===----------------------------------------------------------------------===//

struct ParseCase {
  const char *Text;
  const char *Printed; ///< expected print(), or nullptr if same as Text
};

class TypeParserTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(TypeParserTest, RoundTrips) {
  TypeContext Ctx;
  const ParseCase &C = GetParam();
  std::string Err;
  const Type *T = parseType(C.Text, Ctx, &Err);
  ASSERT_TRUE(T) << C.Text << ": " << Err;
  EXPECT_EQ(T->print(), C.Printed ? C.Printed : C.Text);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TypeParserTest,
    ::testing::Values(
        ParseCase{"void", nullptr}, ParseCase{"int", nullptr},
        ParseCase{"char", nullptr}, ParseCase{"long", nullptr},
        ParseCase{"unsigned int", "unsigned int"},
        ParseCase{"double", nullptr}, ParseCase{"int*", nullptr},
        ParseCase{"char**", nullptr},
        ParseCase{"void(*)(int)", nullptr},
        ParseCase{"int(*)(int,...)", nullptr},
        ParseCase{"long(*)(char*,char*)", nullptr},
        ParseCase{"int(int,char*)", nullptr},
        ParseCase{"struct Foo*", nullptr},
        ParseCase{"long[16]", nullptr},
        ParseCase{"void(*)(void(*)(int))", nullptr}));

TEST(TypeParser, RejectsMalformed) {
  TypeContext Ctx;
  std::string Err;
  EXPECT_EQ(parseType("", Ctx, &Err), nullptr);
  EXPECT_EQ(parseType("notatype", Ctx, &Err), nullptr);
  EXPECT_EQ(parseType("int(", Ctx, &Err), nullptr);
  EXPECT_EQ(parseType("int(*)(", Ctx, &Err), nullptr);
  EXPECT_EQ(parseType("unsigned void", Ctx, &Err), nullptr);
  EXPECT_EQ(parseType("int[x]", Ctx, &Err), nullptr);
  EXPECT_EQ(parseType("int junk", Ctx, &Err), nullptr);
}

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, ScalarSizes) {
  EXPECT_EQ(sizeOf(Ctx.getChar()), 1u);
  EXPECT_EQ(sizeOf(Ctx.getInt(16)), 2u);
  EXPECT_EQ(sizeOf(Ctx.getInt32()), 4u);
  EXPECT_EQ(sizeOf(Ctx.getInt64()), 8u);
  EXPECT_EQ(sizeOf(Ctx.getPointer(Ctx.getVoid())), 8u);
  EXPECT_EQ(sizeOf(Ctx.getArray(Ctx.getInt32(), 10)), 40u);
}

TEST_F(TypesFixture, StructLayoutWithPadding) {
  RecordType *S = Ctx.getRecord("LayoutS");
  S->setFields({{"c", Ctx.getChar()},
                {"i", Ctx.getInt32()},
                {"p", Ctx.getPointer(Ctx.getVoid())}});
  EXPECT_EQ(fieldOffset(S, 0), 0u);
  EXPECT_EQ(fieldOffset(S, 1), 4u); // aligned to 4
  EXPECT_EQ(fieldOffset(S, 2), 8u); // aligned to 8
  EXPECT_EQ(sizeOf(S), 16u);
}

TEST_F(TypesFixture, UnionLayout) {
  RecordType *U = Ctx.getRecord("LayoutU", true);
  U->setFields({{"c", Ctx.getChar()}, {"arr", Ctx.getArray(Ctx.getInt64(), 3)}});
  EXPECT_EQ(fieldOffset(U, 0), 0u);
  EXPECT_EQ(fieldOffset(U, 1), 0u);
  EXPECT_EQ(sizeOf(U), 24u);
}

} // namespace
