//===- visa/ISA.h - The VISA virtual instruction set ------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VISA is a small x86-64-flavored virtual instruction set with a
/// *variable-length byte encoding*. MCFI's machinery operates on encoded
/// VISA bytes exactly the way the paper's tools operate on x86 bytes:
///
///  - the rewriter expands indirect branches into check-transaction
///    instruction sequences and inserts alignment no-ops;
///  - the verifier disassembles modules and checks the instrumentation;
///  - the runtime VM executes the bytes with real concurrent ID-table
///    reads (TABLEREAD / BARYREAD are the %gs-relative loads of Fig. 4);
///  - the gadget scanner decodes from arbitrary offsets, reproducing the
///    "gadget starting in the middle of an instruction" phenomenon that
///    variable-length encodings exhibit.
///
/// Register conventions:
///   r0        return value / scratch
///   r1..r5    arguments
///   r6..r8    codegen temporaries
///   r9..r13   reserved for instrumentation sequences (the paper reserves
///             scratch registers in an LLVM backend pass the same way)
///   r14       stack pointer
///   r15       indirect-branch target register (the %rcx of Fig. 4)
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_VISA_ISA_H
#define MCFI_VISA_ISA_H

#include <cstdint>
#include <string>
#include <vector>

namespace mcfi {
namespace visa {

/// Register numbers with dedicated roles.
enum : uint8_t {
  RegRet = 0,     ///< return value
  RegArg0 = 1,    ///< first argument
  RegTmpBase = 6, ///< first codegen temporary
  RegScratch0 = 9,
  RegIDDiff = 11,   ///< scratch for ID comparison (the cmpl result)
  RegBranchID = 12, ///< branch ID (%edi of Fig. 4)
  RegTargetID = 13, ///< target ID (%esi of Fig. 4)
  RegSP = 14,       ///< stack pointer
  RegTarget = 15,   ///< indirect-branch target (%rcx of Fig. 4)
  NumRegs = 16,
};

/// VISA opcodes. Values are the encoded opcode bytes; gaps are invalid
/// encodings (important for gadget realism: decoding at a misaligned
/// offset can hit an invalid byte).
enum class Opcode : uint8_t {
  Invalid = 0x00,

  MovImm = 0x01,  ///< rd = imm64             [op rd imm64]      10 bytes
  Mov = 0x02,     ///< rd = rs                [op rd rs]          3 bytes
  Load = 0x03,    ///< rd = mem64[rs+off]     [op rd rs off32]    7 bytes
  Store = 0x04,   ///< mem64[rd+off] = rs     [op rd rs off32]    7 bytes
  Load8 = 0x05,   ///< rd = zext mem8[rs+off]                     7 bytes
  Store8 = 0x06,  ///< mem8[rd+off] = low8(rs)                    7 bytes
  Load32 = 0x07,  ///< rd = zext mem32[rs+off]                    7 bytes
  Store32 = 0x08, ///< mem32[rd+off] = low32(rs)                  7 bytes
  Load16 = 0x09,  ///< rd = zext mem16[rs+off]                    7 bytes
  Store16 = 0x0A, ///< mem16[rd+off] = low16(rs)                  7 bytes

  Add = 0x10, ///< rd = ra + rb            [op rd ra rb]       4 bytes
  Sub = 0x11,
  Mul = 0x12,
  DivS = 0x13, ///< signed divide; traps on divide-by-zero
  ModS = 0x14,
  And = 0x15,
  Or = 0x16,
  Xor = 0x17,
  Shl = 0x18,
  ShrL = 0x19, ///< logical shift right
  ShrA = 0x1A, ///< arithmetic shift right
  CmpEq = 0x1B, ///< rd = (ra == rb)
  CmpNe = 0x1C,
  CmpLtS = 0x1D,
  CmpLeS = 0x1E,
  CmpLtU = 0x1F,
  CmpLeU = 0x20,
  Neg = 0x21, ///< rd = -rs                [op rd rs]          3 bytes
  Not = 0x22, ///< rd = ~rs                [op rd rs]          3 bytes

  AndImm = 0x28, ///< rd &= imm64           [op rd imm64]      10 bytes
  AddImm = 0x29, ///< rd += simm32          [op rd imm32]       6 bytes

  Jmp = 0x30,   ///< pc += rel32 (relative to next insn) [op rel32]  5 bytes
  Jz = 0x31,    ///< if (rs == 0) pc += rel32  [op rs rel32]    6 bytes
  Jnz = 0x32,   ///< if (rs != 0) pc += rel32  [op rs rel32]    6 bytes
  JmpInd = 0x33, ///< pc = rs               [op rs]             2 bytes
  Call = 0x34,  ///< push next; pc += rel32 [op rel32]          5 bytes
  CallInd = 0x35, ///< push next; pc = rs   [op rs]             2 bytes
  Ret = 0x36,   ///< pc = pop()             [op]                1 byte
  Push = 0x37,  ///< sp -= 8; mem64[sp] = rs [op rs]            2 bytes
  Pop = 0x38,   ///< rd = mem64[sp]; sp += 8 [op rd]            2 bytes
  Nop = 0x39,   ///< [op]                                       1 byte
  Halt = 0x3A,  ///< CFI violation trap (the hlt of Fig. 4)     1 byte
  Syscall = 0x3B, ///< runtime service call  [op u8]            2 bytes

  TableRead = 0x3C, ///< rd = Tary ID at code address rs [op rd rs] 3 bytes
  BaryRead = 0x3D,  ///< rd = Bary[imm32]    [op rd u32]        6 bytes
};

/// A decoded VISA instruction.
struct Instr {
  Opcode Op = Opcode::Invalid;
  uint8_t Rd = 0;
  uint8_t Ra = 0;
  uint8_t Rb = 0;
  int32_t Off = 0;   ///< load/store displacement or branch rel32
  uint64_t Imm = 0;  ///< imm64 / imm32 / syscall number
  uint8_t Length = 0; ///< encoded length in bytes
};

/// Returns the encoded length of \p Op, or 0 if the opcode is invalid.
unsigned opcodeLength(Opcode Op);

/// Decodes one instruction from \p Code at \p Offset. Returns false if the
/// bytes do not form a valid instruction (invalid opcode or truncation);
/// \p Out is unspecified in that case.
bool decode(const uint8_t *Code, size_t Size, size_t Offset, Instr &Out);

/// Encodes \p I (whose operand fields must be populated; Length is
/// ignored) and appends the bytes to \p Out.
void encode(const Instr &I, std::vector<uint8_t> &Out);

/// Returns true for opcodes that transfer control indirectly (the
/// instructions MCFI instruments: returns, indirect jumps, indirect
/// calls).
bool isIndirectBranch(Opcode Op);

/// Returns true for opcodes that write to memory.
bool isStore(Opcode Op);

/// Returns true if \p Op writes the register named by its Rd field (loads,
/// ALU ops, immediates, pop, and the ID-table reads). Stores name their
/// address register in Rd but do not write it.
bool writesRd(Opcode Op);

/// Renders \p I as assembly text.
std::string printInstr(const Instr &I);

//===----------------------------------------------------------------------===//
// Decode-once support (the VM's predecoding tiers)
//===----------------------------------------------------------------------===//

/// A linear disassembly of a code region: every instruction start the
/// greedy left-to-right walk reaches, plus a byte-offset -> instruction
/// index map. Because VISA decoding is context-free, any start recorded
/// here decodes to exactly what a fetch at that offset would decode; a
/// fetch at an offset *not* recorded (a jump into the middle of an
/// instruction, overlapping-gadget style) simply is not covered and must
/// be decoded afresh by the caller.
struct DecodedStream {
  std::vector<Instr> Instrs;
  std::vector<uint32_t> Offsets;  ///< Offsets[i] = byte offset of Instrs[i]
  std::vector<int32_t> IndexByOff; ///< per byte: instr index or -1
};

/// Greedily decodes [0, Size) of \p Code into \p Out. Undecodable bytes
/// (alignment padding, embedded data, an instruction truncated by Size)
/// are skipped one byte at a time so decoding resynchronizes the same
/// way a linear sweep of x86 bytes would.
void decodeLinear(const uint8_t *Code, size_t Size, DecodedStream &Out);

} // namespace visa
} // namespace mcfi

#endif // MCFI_VISA_ISA_H
