//===- mlta/Mlta.h - Multi-layer type analysis ------------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-layer type analysis (MLTA, after Lu & Hu's "Where Does It Go?",
/// CCS'19) over the MiniC AST: a layered type map that, for every
/// function-pointer-typed field, records the *chain of enclosing record
/// types* through which function addresses are stored and loaded. An
/// indirect call that loads its callee through such a chain may only
/// target functions actually stored through a compatible chain — usually
/// a far smaller set than first-layer type analysis (FLTA), which admits
/// every address-taken function of matching signature.
///
/// Layering. A chain is a sequence of (record signature, field index)
/// layers, innermost first: `o.in.f` yields [(I,f), (O,in)] where I is
/// the record containing `f` and O the record containing `in`. Records
/// are keyed by ctypes' canonical signature (the same key the PR-2
/// dataflow engine's field cells use), so chains unify across modules
/// and across structurally identical records. Pointer indirection ends a
/// chain: `ip->f` yields the one-layer chain [(I,f)] because the engine
/// does not track which instance `ip` designates. Array indexing is
/// transparent (elements are summarized, like the dataflow engine's
/// field-based cells).
///
/// Compatibility. A load through chain L observes a store through chain
/// S iff one chain is a prefix of the other (innermost-aligned): the
/// store `ip->f = g` must be visible to the load `o.in.f(...)` and vice
/// versa, since `ip` may designate exactly that nested instance.
///
/// Struct copies. A record-valued assignment between *different*
/// enclosing paths (`o2.in2 = o1.in`, possibly through a plain variable)
/// adds a chain-rewrite edge; a fixpoint propagates store sets along
/// these edges, so copy cycles converge and copied registries carry
/// their targets with them.
///
/// Soundness: FLTA fallback. Any type the analysis cannot fully account
/// for falls back to FLTA — the refined set for an affected site is the
/// full type-matched set, never less:
///  - union records (their fields alias);
///  - casts between incompatible record pointers, and casts of a
///    function-pointer-carrying record pointer to/from a non-record
///    pointer (fresh malloc results and null literals exempt);
///  - address-of-field (&s.f) applied to a function-pointer field (the
///    cell can then be written through a raw pointer the chains never
///    see);
///  - records handed to externals, variadic argument lists, runtime
///    builtins, or asm (escaped records taint, transitively, every
///    record type embedded in or pointed to by their fields);
///  - a store into a chain whose right-hand side the syntactic resolver
///    cannot name (the chain is poisoned: compatible loads fall back);
///  - unannotated inline assembly or an unresolvable escaping function
///    value havocs the whole result (no site is refined).
///
/// Every refined target set is intersected with the site's FLTA set, so
/// MLTA ⊆ FLTA holds per call site *by construction*; tools/mcfi-audit
/// --mlta re-checks it as a differential. Escaped function values are
/// pinned as indirect-branch targets, exactly like the dataflow engine's
/// KeepTargets.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_MLTA_MLTA_H
#define MCFI_MLTA_MLTA_H

#include "dataflow/Dataflow.h"

#include <set>
#include <string>
#include <vector>

namespace mcfi {
namespace mlta {

/// One enclosing layer of a store/load chain: the record holding the
/// accessed field, by canonical signature.
struct Layer {
  std::string RecordSig; ///< canonical signature of the enclosing record
  unsigned FieldIndex = 0;
  std::string Desc; ///< "Tag.field" for reports

  bool operator==(const Layer &O) const {
    return RecordSig == O.RecordSig && FieldIndex == O.FieldIndex;
  }
  bool operator<(const Layer &O) const {
    if (RecordSig != O.RecordSig)
      return RecordSig < O.RecordSig;
    return FieldIndex < O.FieldIndex;
  }
};

/// A chain of layers, innermost first (element 0 is the field the
/// function pointer lives in; later elements are enclosing records).
using LayerChain = std::vector<Layer>;

/// Renders a chain as "Outer.in->Inner.f" style text (outermost first,
/// human order). Stable: used as the layered-map key.
std::string chainKey(const LayerChain &C);

/// One indirect call site under the layered map.
struct MltaSite {
  std::string Caller; ///< enclosing function
  std::string Module; ///< module defining the caller
  minic::SourceLoc Loc;
  std::string PointerSig; ///< canonical signature of the pointee fn type
  bool VariadicPointer = false;
  /// The callee load chain; empty when the callee is not a member access
  /// (plain FLTA site).
  LayerChain Chain;
  /// True iff the layered map fully accounts for the chain: Targets is
  /// then the MLTA set. False: the site keeps its FLTA set.
  bool Refined = false;
  /// The refined target set (Refined) — always a subset of Flta.
  std::vector<std::string> Targets;
  /// The FLTA set: every defined address-taken function whose signature
  /// type-matches the pointer (the set the plain CFG enforces).
  std::vector<std::string> Flta;
  /// Why the site fell back, when it did (human-readable).
  std::string FallbackWhy;
  /// Witness chain per refined target (parallel to Targets): the store
  /// that put the function into the layered map, then the load.
  std::vector<std::vector<EvidenceStep>> Witness;
};

struct MltaStats {
  unsigned Records = 0;    ///< distinct record signatures seen in chains
  unsigned Chains = 0;     ///< distinct store chains in the layered map
  unsigned Stores = 0;     ///< store events folded into the map
  unsigned CopyEdges = 0;  ///< chain-rewrite edges from struct copies
  unsigned Iterations = 0; ///< copy-propagation fixpoint rounds
};

/// The layered type map plus per-site refinement results.
struct MltaResult {
  std::vector<MltaSite> Sites;
  /// Record signatures that escaped (plus everything they taint); any
  /// chain touching one falls back to FLTA.
  std::set<std::string> EscapedRecords;
  /// Function values that escaped to code the analysis cannot see; they
  /// must remain indirect-branch targets under any refinement.
  std::set<std::string> KeepTargets;
  /// Nothing may be refined (unannotated asm / unresolvable escape).
  bool Havoc = false;
  std::vector<std::string> Notes;
  MltaStats Stats;
};

/// Runs the layered-type analysis over a whole-program module set
/// (same linkage rules as the dataflow engine: names bind by name).
MltaResult analyzeLayeredTypes(const std::vector<FlowModule> &Mods);

/// Builds the intersection-only CFG refinement from the layered map:
/// every refined site contributes its MLTA set keyed by (caller, pointer
/// signature); a key covering any fallback site is dropped entirely;
/// escaped functions are pinned. With Havoc, the refinement is empty
/// (refined CFG == type-matched CFG). The produced refinement rides
/// LinkOptions::Refinement and therefore applies identically at static
/// link, dlopen (including flat-combining batches) and dlclose retire
/// regenerations, preserving the deterministic parallel merge.
CFGRefinement computeMltaRefinement(const MltaResult &R);

} // namespace mlta
} // namespace mcfi

#endif // MCFI_MLTA_MLTA_H
