//===- cfg/SigCache.cpp - Per-module interned signature cache -------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/SigCache.h"

#include "module/MCFIObject.h"

using namespace mcfi;

namespace {

uint64_t hashString(uint64_t H, const std::string &S) {
  // Length-prefix every field so concatenation ambiguity ("a"+"bc" vs
  // "ab"+"c") cannot collide two different modules.
  uint64_t Len = S.size();
  H = fnv1aHash(&Len, sizeof(Len), H);
  return fnv1aHash(S.data(), S.size(), H);
}

uint64_t hashFlag(uint64_t H, bool B) {
  uint8_t Byte = B ? 1 : 0;
  return fnv1aHash(&Byte, 1, H);
}

const InternedSig *internOrNull(const std::string &Sig) {
  if (Sig.empty())
    return nullptr;
  return SigInterner::global().intern(Sig);
}

} // namespace

uint64_t mcfi::hashModuleContent(const MCFIObject &Obj) {
  uint64_t H = hashString(0xcbf29ce484222325ull, Obj.Name);
  H = fnv1aHash(Obj.Code.data(), Obj.Code.size(), H);
  for (const FunctionInfo &F : Obj.Aux.Functions) {
    H = hashString(H, F.Name);
    H = hashString(H, F.TypeSig);
    H = hashFlag(H, F.AddressTaken);
    H = hashFlag(H, F.Variadic);
  }
  for (const BranchSite &B : Obj.Aux.BranchSites) {
    H = hashString(H, B.TypeSig);
    H = hashString(H, B.PltSymbol);
    H = hashFlag(H, B.VariadicPointer);
  }
  for (const CallSiteInfo &C : Obj.Aux.CallSites) {
    H = hashString(H, C.Callee);
    H = hashString(H, C.TypeSig);
    H = hashFlag(H, C.VariadicPointer);
    H = hashFlag(H, C.IsSetjmp);
  }
  for (const TailCallInfo &T : Obj.Aux.TailCalls) {
    H = hashString(H, T.Callee);
    H = hashString(H, T.TypeSig);
    H = hashFlag(H, T.VariadicPointer);
  }
  for (const std::string &Name : Obj.Aux.AddressTakenImports)
    H = hashString(H, Name);
  return H;
}

std::shared_ptr<const ModuleSigs> mcfi::getModuleSigs(const MCFIObject &Obj) {
  uint64_t Hash = hashModuleContent(Obj);
  if (std::shared_ptr<const void> Hit = SigSetCache::global().lookup(Hash))
    return std::static_pointer_cast<const ModuleSigs>(Hit);

  auto Sigs = std::make_shared<ModuleSigs>();
  Sigs->ContentHash = Hash;
  Sigs->FuncSigs.reserve(Obj.Aux.Functions.size());
  for (const FunctionInfo &F : Obj.Aux.Functions)
    Sigs->FuncSigs.push_back(internOrNull(F.TypeSig));
  Sigs->BranchSigs.reserve(Obj.Aux.BranchSites.size());
  for (const BranchSite &B : Obj.Aux.BranchSites)
    Sigs->BranchSigs.push_back(internOrNull(B.TypeSig));
  Sigs->CallSigs.reserve(Obj.Aux.CallSites.size());
  for (const CallSiteInfo &C : Obj.Aux.CallSites)
    Sigs->CallSigs.push_back(internOrNull(C.TypeSig));
  Sigs->TailSigs.reserve(Obj.Aux.TailCalls.size());
  for (const TailCallInfo &T : Obj.Aux.TailCalls)
    Sigs->TailSigs.push_back(internOrNull(T.TypeSig));

  std::shared_ptr<const void> Stored =
      SigSetCache::global().store(Hash, std::move(Sigs));
  return std::static_pointer_cast<const ModuleSigs>(Stored);
}
