file(REMOVE_RECURSE
  "libmcfi_cfg.a"
)
