//===- minic/Lexer.cpp - MiniC lexer ---------------------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace mcfi;
using namespace mcfi::minic;

namespace {

const std::unordered_map<std::string, TokKind> &keywordMap() {
  static const std::unordered_map<std::string, TokKind> Map = {
      {"void", TokKind::KwVoid},       {"char", TokKind::KwChar},
      {"short", TokKind::KwShort},     {"int", TokKind::KwInt},
      {"long", TokKind::KwLong},       {"unsigned", TokKind::KwUnsigned},
      {"float", TokKind::KwFloat},     {"double", TokKind::KwDouble},
      {"struct", TokKind::KwStruct},   {"union", TokKind::KwUnion},
      {"enum", TokKind::KwEnum},       {"typedef", TokKind::KwTypedef},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn},   {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"switch", TokKind::KwSwitch},
      {"case", TokKind::KwCase},       {"default", TokKind::KwDefault},
      {"goto", TokKind::KwGoto},       {"sizeof", TokKind::KwSizeof},
      {"NULL", TokKind::KwNull},       {"__asm__", TokKind::KwAsm},
      {"static", TokKind::KwStatic},   {"const", TokKind::KwConst},
      {"do", TokKind::KwDo},
  };
  return Map;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, std::vector<std::string> &Errors)
      : Src(Source), Errors(Errors) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    for (;;) {
      skipWhitespaceAndComments();
      Token T = next();
      Tokens.push_back(T);
      if (T.Kind == TokKind::Eof)
        break;
    }
    return Tokens;
  }

private:
  char peekChar(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char getChar() {
    char C = peekChar();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipWhitespaceAndComments() {
    for (;;) {
      char C = peekChar();
      if (std::isspace(static_cast<unsigned char>(C))) {
        getChar();
        continue;
      }
      if (C == '/' && peekChar(1) == '/') {
        while (peekChar() && peekChar() != '\n')
          getChar();
        continue;
      }
      if (C == '/' && peekChar(1) == '*') {
        getChar();
        getChar();
        while (peekChar() && !(peekChar() == '*' && peekChar(1) == '/'))
          getChar();
        if (peekChar()) {
          getChar();
          getChar();
        } else {
          error("unterminated block comment");
        }
        continue;
      }
      return;
    }
  }

  void error(const std::string &Msg) {
    Errors.push_back(
        formatString("line %u: %s", Line, Msg.c_str()));
  }

  Token make(TokKind K) {
    Token T;
    T.Kind = K;
    T.Loc = {Line, Col};
    return T;
  }

  char unescape(char C) {
    switch (C) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case '0':
      return '\0';
    case '\\':
      return '\\';
    case '\'':
      return '\'';
    case '"':
      return '"';
    default:
      error("unknown escape sequence");
      return C;
    }
  }

  Token next() {
    Token T = make(TokKind::Eof);
    char C = peekChar();
    if (!C)
      return T;

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Id;
      while (std::isalnum(static_cast<unsigned char>(peekChar())) ||
             peekChar() == '_')
        Id += getChar();
      auto It = keywordMap().find(Id);
      if (It != keywordMap().end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokKind::Ident;
        T.Text = std::move(Id);
      }
      return T;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      if (C == '0' && (peekChar(1) == 'x' || peekChar(1) == 'X')) {
        getChar();
        getChar();
        while (std::isxdigit(static_cast<unsigned char>(peekChar()))) {
          char D = getChar();
          int Digit = std::isdigit(static_cast<unsigned char>(D))
                          ? D - '0'
                          : std::tolower(D) - 'a' + 10;
          V = V * 16 + Digit;
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(peekChar())))
          V = V * 10 + (getChar() - '0');
      }
      // Accept and ignore integer suffixes.
      while (peekChar() == 'l' || peekChar() == 'L' || peekChar() == 'u' ||
             peekChar() == 'U')
        getChar();
      T.Kind = TokKind::IntLit;
      T.IntValue = V;
      return T;
    }

    if (C == '"') {
      getChar();
      std::string S;
      while (peekChar() && peekChar() != '"') {
        char D = getChar();
        if (D == '\\')
          D = unescape(getChar());
        S += D;
      }
      if (!peekChar())
        error("unterminated string literal");
      else
        getChar();
      T.Kind = TokKind::StrLit;
      T.Text = std::move(S);
      return T;
    }

    if (C == '\'') {
      getChar();
      char D = getChar();
      if (D == '\\')
        D = unescape(getChar());
      if (peekChar() == '\'')
        getChar();
      else
        error("unterminated character literal");
      T.Kind = TokKind::CharLit;
      T.IntValue = D;
      return T;
    }

    getChar();
    auto two = [&](char Second, TokKind Long, TokKind Short) {
      if (peekChar() == Second) {
        getChar();
        T.Kind = Long;
      } else {
        T.Kind = Short;
      }
      return T;
    };

    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      return T;
    case ')':
      T.Kind = TokKind::RParen;
      return T;
    case '{':
      T.Kind = TokKind::LBrace;
      return T;
    case '}':
      T.Kind = TokKind::RBrace;
      return T;
    case '[':
      T.Kind = TokKind::LBracket;
      return T;
    case ']':
      T.Kind = TokKind::RBracket;
      return T;
    case ';':
      T.Kind = TokKind::Semi;
      return T;
    case ',':
      T.Kind = TokKind::Comma;
      return T;
    case ':':
      T.Kind = TokKind::Colon;
      return T;
    case '?':
      T.Kind = TokKind::Question;
      return T;
    case '~':
      T.Kind = TokKind::Tilde;
      return T;
    case '^':
      T.Kind = TokKind::Caret;
      return T;
    case '*':
      return two('=', TokKind::StarAssign, TokKind::Star);
    case '%':
      T.Kind = TokKind::Percent;
      return T;
    case '!':
      return two('=', TokKind::NotEq, TokKind::Bang);
    case '=':
      return two('=', TokKind::EqEq, TokKind::Assign);
    case '/':
      return two('=', TokKind::SlashAssign, TokKind::Slash);
    case '.':
      if (peekChar() == '.' && peekChar(1) == '.') {
        getChar();
        getChar();
        T.Kind = TokKind::Ellipsis;
        return T;
      }
      T.Kind = TokKind::Dot;
      return T;
    case '&':
      return two('&', TokKind::AmpAmp, TokKind::Amp);
    case '|':
      return two('|', TokKind::PipePipe, TokKind::Pipe);
    case '+':
      if (peekChar() == '+') {
        getChar();
        T.Kind = TokKind::PlusPlus;
        return T;
      }
      return two('=', TokKind::PlusAssign, TokKind::Plus);
    case '-':
      if (peekChar() == '>') {
        getChar();
        T.Kind = TokKind::Arrow;
        return T;
      }
      if (peekChar() == '-') {
        getChar();
        T.Kind = TokKind::MinusMinus;
        return T;
      }
      return two('=', TokKind::MinusAssign, TokKind::Minus);
    case '<':
      if (peekChar() == '<') {
        getChar();
        T.Kind = TokKind::Shl;
        return T;
      }
      return two('=', TokKind::Le, TokKind::Lt);
    case '>':
      if (peekChar() == '>') {
        getChar();
        T.Kind = TokKind::Shr;
        return T;
      }
      return two('=', TokKind::Ge, TokKind::Gt);
    default:
      error(formatString("unexpected character '%c'", C));
      return next();
    }
  }

  const std::string &Src;
  std::vector<std::string> &Errors;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace

std::vector<Token> mcfi::minic::lex(const std::string &Source,
                                    std::vector<std::string> &Errors) {
  return LexerImpl(Source, Errors).run();
}
