file(REMOVE_RECURSE
  "libmcfi_verifier.a"
)
