//===- tests/MinicTest.cpp - MiniC frontend tests --------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Parser.h"
#include "minic/Sema.h"

#include <gtest/gtest.h>

using namespace mcfi;
using namespace mcfi::minic;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Src) {
  std::vector<std::string> Errors;
  auto P = parseProgram(Src, Errors);
  EXPECT_TRUE(P) << (Errors.empty() ? "?" : Errors.front());
  return P;
}

std::unique_ptr<Program> checkOk(const std::string &Src) {
  std::vector<std::string> Errors;
  auto P = parseProgram(Src, Errors);
  EXPECT_TRUE(P) << (Errors.empty() ? "?" : Errors.front());
  if (!P)
    return nullptr;
  EXPECT_TRUE(analyze(*P, Errors))
      << (Errors.empty() ? "?" : Errors.front());
  return P;
}

void expectError(const std::string &Src, const std::string &Needle) {
  std::vector<std::string> Errors;
  auto P = parseProgram(Src, Errors);
  bool Failed = !P;
  if (P)
    Failed = !analyze(*P, Errors);
  EXPECT_TRUE(Failed) << "expected failure containing '" << Needle << "'";
  bool Found = false;
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "no error mentions '" << Needle << "'; got: "
                     << (Errors.empty() ? "(none)" : Errors.front());
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

TEST(Parser, DeclaratorZoo) {
  auto P = parseOk(R"(
    typedef long (*Handler)(long);
    struct Node { long v; struct Node *next; };
    union Mix { long i; char *s; };
    enum Color { RED, GREEN = 5, BLUE };
    long table(long (*cbs[4])(long), int n);
    long g_arr[16];
    long (*g_fp)(long, char *);
    Handler g_h;
    unsigned int bits;
    long f(struct Node *n, Handler h) { return h(n->v); }
  )");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->findFunction("f"));
  EXPECT_TRUE(P->findFunction("table"));
}

TEST(Parser, EnumConstantsFoldInSwitchAndExpr) {
  auto P = checkOk(R"(
    enum Kind { A, B = 10, C };
    long f(long k) {
      switch (k) {
      case 0: return 100;
      case 10: return 200;
      default: break;
      }
      return B + C; /* 10 + 11 */
    }
  )");
  ASSERT_TRUE(P);
}

TEST(Parser, RejectsGarbage) {
  std::vector<std::string> Errors;
  EXPECT_FALSE(parseProgram("int f( {", Errors));
  Errors.clear();
  EXPECT_FALSE(parseProgram("int x = ;", Errors));
  Errors.clear();
  EXPECT_FALSE(parseProgram("struct S { int; };", Errors));
  Errors.clear();
  EXPECT_FALSE(parseProgram("int f() { return 1 }", Errors));
}

TEST(Parser, CastVsParenDisambiguation) {
  auto P = checkOk(R"(
    typedef long MyInt;
    long f(long x) {
      long a = (MyInt)x;       /* cast via typedef */
      long b = (x) + 1;        /* parenthesized expr */
      char *p = (char *)x;     /* cast */
      return a + b + (long)p;
    }
  )");
  ASSERT_TRUE(P);
}

TEST(Parser, StringEscapes) {
  auto P = parseOk(R"(char *s = "a\tb\n\"q\"\\";)");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Globals.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Sema diagnostics
//===----------------------------------------------------------------------===//

TEST(Sema, UndeclaredIdentifier) {
  expectError("int main() { return nope; }", "undeclared");
}

TEST(Sema, UndefinedGotoLabel) {
  expectError("int main() { goto missing; return 0; }", "undefined label");
}

TEST(Sema, DuplicateLabel) {
  expectError("int main() { l: ; l: ; return 0; }", "duplicate label");
}

TEST(Sema, ArgumentCountMismatch) {
  expectError("long f(long a, long b) { return a + b; }"
              "int main() { return (int)f(1); }",
              "argument");
}

TEST(Sema, VoidReturnWithValue) {
  expectError("void f(void) { return 3; }", "void function returns a value");
}

TEST(Sema, NonVoidReturnWithoutValue) {
  expectError("long f(void) { return; }", "without a value");
}

TEST(Sema, AssignToRValue) {
  expectError("int main() { 3 = 4; return 0; }", "not an lvalue");
}

TEST(Sema, MemberOfNonStruct) {
  expectError("int main() { long x; return x.field; }", "member access");
}

TEST(Sema, UnknownField) {
  expectError("struct S { long a; };"
              "int main() { struct S s; return (int)s.b; }",
              "no field named");
}

TEST(Sema, CallNonFunction) {
  expectError("int main() { long x; return (int)x(); }",
              "not a function");
}

TEST(Sema, StructAssignRejected) {
  expectError("struct S { long a; };"
              "int main() { struct S a; struct S b; a = b; return 0; }",
              "struct assignment");
}

//===----------------------------------------------------------------------===//
// Typing and decay
//===----------------------------------------------------------------------===//

TEST(Sema, FunctionDesignatorDecayMarksAddressTaken) {
  auto P = checkOk(R"(
    long cb(long x) { return x; }
    long direct_only(long x) { return x; }
    int main() {
      long (*p)(long) = cb;
      direct_only(3);
      return (int)p(1);
    }
  )");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->findFunction("cb")->isAddressTaken());
  // Direct calls do NOT take the address (critical for the CFG: only
  // genuinely address-taken functions are indirect-call targets).
  EXPECT_FALSE(P->findFunction("direct_only")->isAddressTaken());
}

TEST(Sema, AddrOfFunctionAlsoMarks) {
  auto P = checkOk(R"(
    long cb(long x) { return x; }
    long (*p)(long) = &cb;
    int main() { return 0; }
  )");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->findFunction("cb")->isAddressTaken());
}

TEST(Sema, ImplicitConversionsMaterializeAsCasts) {
  auto P = checkOk(R"(
    long f(long x) { return x; }
    int main() {
      int small = 3;
      long wide = small;  /* int -> long */
      char *p = NULL;     /* 0 -> char* */
      return (int)f(small) + (int)wide + (p == NULL);
    }
  )");
  ASSERT_TRUE(P);
}

TEST(Sema, AsmAnnotationsResolve) {
  auto P = checkOk(R"MC(
    void copy(char *d, char *s, long n) {
      __asm__("rep movsb" : copy = "void(char*,char*,long)");
      long i;
      for (i = 0; i < n; i = i + 1) d[i] = s[i];
    }
  )MC");
  ASSERT_TRUE(P);
}

TEST(Sema, BadAsmAnnotationRejected) {
  expectError(R"MC(
    void f(void) { __asm__("nop" : f = "not a type"); }
  )MC",
              "asm type annotation");
}

TEST(Sema, BuiltinsAreDeclared) {
  auto P = checkOk(R"(
    int main() {
      long *p = (long *)malloc(64);
      p[0] = 1;
      free(p);
      print_int(p[0]);
      return 0;
    }
  )");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->findFunction("malloc")->getBuiltin(), BuiltinKind::Malloc);
}

} // namespace
