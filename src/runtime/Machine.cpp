//===- runtime/Machine.cpp - The MCFI runtime machine ---------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Machine.h"

#include "runtime/Trace.h"
#include "support/Assert.h"

#include <algorithm>
#include <cstring>

using namespace mcfi;

Machine::Machine(const MachineOptions &Opts)
    : CodeCapacity(Opts.CodeCapacity), DataCapacity(Opts.DataCapacity),
      StackSize(Opts.StackSize), CodeBytes(Opts.CodeCapacity, 0),
      DataWords(Opts.DataCapacity / 8, 0),
      Tables(Opts.CodeCapacity, Opts.BaryCapacity), Tier(Opts.Tier),
      ExecCache(std::make_unique<TraceCache>()) {
  // Heap occupies the middle of the data region: globals grow from the
  // bottom, stacks from the top, heap in between (re-floored as modules
  // load their globals).
  HeapNext.store(DataBase, std::memory_order_relaxed);
  StackNext.store(DataBase + DataCapacity, std::memory_order_relaxed);
}

Machine::~Machine() = default;

//===----------------------------------------------------------------------===//
// Module mapping
//===----------------------------------------------------------------------===//

int Machine::mapModule(MCFIObject Obj) {
  uint64_t CodeSize = Obj.Code.size();
  uint64_t NeededCode = (CodeSize + 7) & ~7ull; // keep modules 8-aligned
  uint64_t DataSize = (Obj.DataSize + 7) & ~7ull;
  if (DataUsed + DataSize > DataCapacity / 2)
    return -1;

  MappedModule M;
  // Prefer a reclaimed hole: ranges reach the free list only after their
  // grace period, so reuse here can never alias a range a guest thread
  // still holds pre-retire state for.
  uint64_t ReusedBase = Reclaimer.allocFromFree(NeededCode, 8);
  if (ReusedBase) {
    M.CodeBase = ReusedBase;
    std::memcpy(CodeBytes.data() + (ReusedBase - CodeBase), Obj.Code.data(),
                CodeSize);
  } else {
    uint64_t Used = CodeUsed.load(std::memory_order_relaxed);
    if (Used + NeededCode > CodeCapacity)
      return -1;
    M.CodeBase = CodeBase + Used;
    std::memcpy(CodeBytes.data() + Used, Obj.Code.data(), CodeSize);
    // Publish the extension only after the bytes are in place: a guest
    // thread whose isCodeAddr sees the new extent must see the code too.
    CodeUsed.store(Used + NeededCode, std::memory_order_release);
  }
  M.CodeSize = NeededCode;
  M.DataBase = DataBase + DataUsed;
  DataUsed += DataSize;

  for (const auto &[Off, Bytes] : Obj.DataInit)
    writeDataBytes(M.DataBase + Off, Bytes.data(), Bytes.size());

  M.Obj = std::make_unique<MCFIObject>(std::move(Obj));
  int Index;
  {
    std::lock_guard<std::mutex> Guard(ModuleLock);
    M.Serial = NextModuleSerial++;
    Mapped.push_back(std::move(M));
    Index = static_cast<int>(Mapped.size() - 1);
  }

  // The heap starts after all loaded globals (re-based on every load;
  // allocations already handed out stay put because the heap bump pointer
  // only moves forward).
  uint64_t HeapFloor = DataBase + DataUsed;
  uint64_t Cur = HeapNext.load(std::memory_order_relaxed);
  while (Cur < HeapFloor &&
         !HeapNext.compare_exchange_weak(Cur, HeapFloor,
                                         std::memory_order_relaxed)) {
  }
  noteCodeChanged();
  return Index;
}

void Machine::noteCodeChanged() {
  CodeEpoch.fetch_add(1, std::memory_order_release);
  ExecCache->invalidate(*this);
}

void Machine::sealModule(int Index) {
  std::lock_guard<std::mutex> Guard(ModuleLock);
  assert(Index >= 0 && static_cast<size_t>(Index) < Mapped.size());
  Mapped[Index].Sealed = true;
  recomputeSealedPrefixLocked();
  noteCodeChanged();
}

void Machine::recomputeSealedPrefixLocked() {
  // The contiguous sealed prefix (fast executable check). With free-list
  // reuse the Mapped order is no longer address order, and reclaimed
  // holes break contiguity: walk spans sorted by base address and stop
  // at the first gap, unsealed module, or reclaimed hole. Retired (but
  // not yet reclaimed) modules still count — their code stays mapped and
  // executable until the grace period elapses.
  std::vector<std::pair<uint64_t, uint64_t>> Spans; // {Base, End}, sealed
  Spans.reserve(Mapped.size());
  for (const MappedModule &M : Mapped) {
    if (M.Reclaimed || !M.Sealed)
      continue;
    Spans.emplace_back(M.CodeBase, M.CodeBase + M.CodeSize);
  }
  std::sort(Spans.begin(), Spans.end());
  uint64_t End = CodeBase;
  for (const auto &[B, E] : Spans) {
    if (B != End)
      break;
    End = E;
  }
  SealedPrefix.store(End - CodeBase, std::memory_order_release);
}

void Machine::auditPatchTarget(uint64_t Addr) {
  // ModuleLock: a concurrent drainReclaim mutates Mapped (Reclaimed
  // flags, Obj teardown, tail-trim pop_back) and a concurrent dlopen
  // grows it. The patched module itself is mid-install — unsealed,
  // unretired — so its bytes can't be concurrently reclaimed, but this
  // W^X audit walk must not race the bookkeeping. Retired modules are
  // skipped along with reclaimed ones: their entry may still claim a
  // range whose grace period matured onto the free list an instant ago
  // (collect publishes the range before applyReclaim flips Reclaimed),
  // and a new module legitimately patching that reused range must not
  // trip the old tombstone's Sealed flag.
  std::lock_guard<std::mutex> Guard(ModuleLock);
  for (const MappedModule &M : Mapped) {
    if (M.Reclaimed || M.Retired)
      continue;
    if (Addr >= M.CodeBase && Addr < M.CodeBase + M.Obj->Code.size()) {
      assert(!M.Sealed && "patching a sealed module violates W^X");
      break;
    }
  }
  (void)Addr;
}

void Machine::patchCode64(uint64_t Addr, uint64_t Value) {
  assert(isCodeAddr(Addr, 8) && "patch outside code region");
  auditPatchTarget(Addr);
  uint64_t Off = Addr - CodeBase;
  for (unsigned I = 0; I != 8; ++I)
    CodeBytes[Off + I] = static_cast<uint8_t>(Value >> (8 * I));
}

void Machine::patchCode32(uint64_t Addr, uint32_t Value) {
  assert(isCodeAddr(Addr, 4) && "patch outside code region");
  auditPatchTarget(Addr);
  uint64_t Off = Addr - CodeBase;
  for (unsigned I = 0; I != 4; ++I)
    CodeBytes[Off + I] = static_cast<uint8_t>(Value >> (8 * I));
}

const uint8_t *Machine::codePtr(uint64_t Addr, uint64_t Size) const {
  if (!isCodeAddr(Addr, Size))
    return nullptr;
  return CodeBytes.data() + (Addr - CodeBase);
}

//===----------------------------------------------------------------------===//
// Policy state
//===----------------------------------------------------------------------===//

void Machine::setSetjmpRetSites(std::vector<uint64_t> Sites) {
  std::lock_guard<std::mutex> Guard(SetjmpLock);
  SetjmpSites.clear();
  SetjmpSites.insert(Sites.begin(), Sites.end());
}

bool Machine::isSetjmpRetSite(uint64_t Addr) const {
  std::lock_guard<std::mutex> Guard(SetjmpLock);
  return SetjmpSites.count(Addr) != 0;
}

void Machine::noteSyscallBoundary(Thread &T) {
  uint64_t Gen = QuiesceGen.load(std::memory_order_acquire);
  if (T.QuiesceGen == Gen)
    return; // already counted this generation
  T.QuiesceGen = Gen;

  std::lock_guard<std::mutex> Guard(QuiesceLock);
  // The generation may have advanced while we waited for the lock; the
  // thread's stamp still marks it quiesced for the *new* generation only
  // if the stamps match.
  if (Gen != QuiesceGen.load(std::memory_order_relaxed))
    return;
  ++QuiescedThisGen;
  if (QuiescedThisGen < RunningThreads.load(std::memory_order_acquire))
    return;
  // Every thread currently inside the interpreter has crossed a syscall
  // boundary this generation: no in-flight check transaction can hold a
  // pre-generation version, so the ABA counter resets (Sec. 5.2).
  Tables.resetVersionEpoch();
  QuiescedThisGen = 0;
  QuiesceGen.store(Gen + 1, std::memory_order_release);
  // Generation completion is also the reclaimer's grace clock: regions
  // retired at generation R mature once Gen+1 >= R+2 (the completion of
  // R+1 proves every thread crossed a boundary strictly after the
  // retire). QuiesceLock is held; applyReclaim takes ModuleLock inside
  // it, which no path acquires in the opposite order.
  applyReclaim(Reclaimer.collect(Gen + 1));
  if (QuiesceEpochHook)
    QuiesceEpochHook(Gen);
}

//===----------------------------------------------------------------------===//
// Module unload
//===----------------------------------------------------------------------===//

void Machine::markModuleRetired(int Index, uint32_t TombstoneSites) {
  std::lock_guard<std::mutex> Guard(ModuleLock);
  assert(Index >= 0 && static_cast<size_t>(Index) < Mapped.size());
  MappedModule &M = Mapped[Index];
  assert(!M.Retired && "module retired twice");
  M.Retired = true;
  M.TombstoneSites = TombstoneSites;
}

void Machine::retireModule(int Index, std::vector<uint32_t> ExclusiveECNs) {
  RetiredRegion R;
  {
    std::lock_guard<std::mutex> Guard(ModuleLock);
    assert(Index >= 0 && static_cast<size_t>(Index) < Mapped.size());
    MappedModule &M = Mapped[Index];
    assert(M.Retired && "retireModule without markModuleRetired");
    R.CodeBase = M.CodeBase;
    R.SizeBytes = M.CodeSize;
    R.Serial = M.Serial;
  }
  R.ECNs = std::move(ExclusiveECNs);
  // Stamp with the forming generation: threads already counted toward it
  // may still be mid-transaction, hence the R+2 maturity rule.
  R.RetireGen = QuiesceGen.load(std::memory_order_acquire);
  Reclaimer.retire(std::move(R));
}

void Machine::drainReclaim() {
  if (RunningThreads.load(std::memory_order_acquire) == 0) {
    // No guest thread is inside the interpreter: there are no readers,
    // so every pending region is trivially past grace.
    applyReclaim(Reclaimer.collectAll());
    return;
  }
  applyReclaim(
      Reclaimer.collect(QuiesceGen.load(std::memory_order_acquire)));
}

void Machine::applyReclaim(const std::vector<RetiredRegion> &Matured) {
  if (Matured.empty())
    return;
  // Serialize against the linker's batch leaders: their module walks
  // (moduleViews, GOT updates, Bary-index patching) span many
  // ModuleLock-sized critical sections and would otherwise observe the
  // tail-trim's pop_back mid-walk. Lock order: ReclaimApplyLock before
  // ModuleLock (the guest quiescence path adds QuiesceLock in front).
  auto ApplyGuard = lockReclaimApply();
  {
    std::lock_guard<std::mutex> Guard(ModuleLock);
    for (const RetiredRegion &R : Matured) {
      for (MappedModule &M : Mapped) {
        if (M.Serial != R.Serial)
          continue;
        assert(M.Retired && "reclaiming a live module");
        M.Reclaimed = true;
        M.Obj.reset(); // drop symbols/metadata; the tombstone stays
        // The W^X "unmap": the range is no longer executable content.
        // A stray fetch into the hole reads zeroes and traps on decode —
        // it can never execute stale module bytes.
        std::memset(CodeBytes.data() + (R.CodeBase - CodeBase), 0,
                    R.SizeBytes);
        break;
      }
    }
    recomputeSealedPrefixLocked();
    // Publish the ranges for reuse only now that the bytes are zeroed:
    // a range on the free list is immediately allocatable by the next
    // mapModule, which must never have its freshly copied code wiped by
    // this function's memset (collect() deliberately does not publish).
    for (const RetiredRegion &R : Matured)
      Reclaimer.addFreeRange(R.CodeBase, R.SizeBytes);
    // Tail-trim cascade: peel matured holes off the top of the code
    // region and retreat CodeUsed, so a machine that unloads everything
    // it dlopened returns to its exact initial footprint (the churn
    // storm asserts this). Interior holes stay on the free list for
    // reuse by the next mapModule.
    FreeRange Top;
    while (Reclaimer.takeFreeRangeEndingAt(codeTop(), Top)) {
      CodeUsed.store(Top.Base - CodeBase, std::memory_order_release);
      while (!Mapped.empty() && Mapped.back().Reclaimed &&
             Mapped.back().CodeBase >= Top.Base)
        Mapped.pop_back();
    }
  }
  noteCodeChanged();
}

//===----------------------------------------------------------------------===//
// Guest memory
//===----------------------------------------------------------------------===//

bool Machine::load(uint64_t Addr, unsigned Size, uint64_t &Out) const {
  if (Addr & (Size - 1))
    return false; // naturally aligned accesses only
  if (isDataAddr(Addr, Size)) {
    // atomic_ref requires a non-const object; the underlying storage is
    // mutable (it is the guest's RAM).
    uint8_t *Base = const_cast<uint8_t *>(
                        reinterpret_cast<const uint8_t *>(DataWords.data())) +
                    (Addr - DataBase);
    switch (Size) {
    case 1:
      Out = std::atomic_ref<uint8_t>(*Base).load(std::memory_order_relaxed);
      return true;
    case 2:
      Out = std::atomic_ref<uint16_t>(*reinterpret_cast<uint16_t *>(Base))
                .load(std::memory_order_relaxed);
      return true;
    case 4:
      Out = std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t *>(Base))
                .load(std::memory_order_relaxed);
      return true;
    case 8:
      Out = std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t *>(Base))
                .load(std::memory_order_relaxed);
      return true;
    default:
      return false;
    }
  }
  if (isCodeAddr(Addr, Size)) {
    // The code region is readable (jump tables live there); it is sealed
    // and immutable once executing, so plain reads suffice.
    const uint8_t *Base = CodeBytes.data() + (Addr - CodeBase);
    Out = 0;
    for (unsigned I = 0; I != Size; ++I)
      Out |= static_cast<uint64_t>(Base[I]) << (8 * I);
    return true;
  }
  return false;
}

bool Machine::store(uint64_t Addr, unsigned Size, uint64_t Value) {
  if (Addr & (Size - 1))
    return false;
  if (!isDataAddr(Addr, Size))
    return false; // code region and everything else is not writable
  uint8_t *Base =
      reinterpret_cast<uint8_t *>(DataWords.data()) + (Addr - DataBase);
  switch (Size) {
  case 1:
    std::atomic_ref<uint8_t>(*Base).store(static_cast<uint8_t>(Value),
                                          std::memory_order_relaxed);
    return true;
  case 2:
    std::atomic_ref<uint16_t>(*reinterpret_cast<uint16_t *>(Base))
        .store(static_cast<uint16_t>(Value), std::memory_order_relaxed);
    return true;
  case 4:
    std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t *>(Base))
        .store(static_cast<uint32_t>(Value), std::memory_order_relaxed);
    return true;
  case 8:
    std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t *>(Base))
        .store(Value, std::memory_order_relaxed);
    return true;
  default:
    return false;
  }
}

std::string Machine::readString(uint64_t Addr) const {
  std::string S;
  for (uint64_t I = 0; I != 1u << 20; ++I) {
    uint64_t C;
    if (!load(Addr + I, 1, C))
      return S;
    if (!C)
      return S;
    S += static_cast<char>(C);
  }
  return S;
}

bool Machine::writeDataBytes(uint64_t Addr, const uint8_t *Bytes,
                             uint64_t Size) {
  if (!isDataAddr(Addr, std::max<uint64_t>(Size, 1)))
    return false;
  std::memcpy(reinterpret_cast<uint8_t *>(DataWords.data()) +
                  (Addr - DataBase),
              Bytes, Size);
  return true;
}

uint64_t Machine::allocHeap(uint64_t Size) {
  uint64_t Aligned = (Size + 7) & ~7ull;
  uint64_t Addr = HeapNext.fetch_add(Aligned, std::memory_order_relaxed);
  // Keep room below the lowest allocated stack.
  if (Addr + Aligned >
      StackNext.load(std::memory_order_relaxed) - StackSize)
    return 0;
  return Addr;
}

uint64_t Machine::allocStack() {
  // Threads may be created concurrently (guest pthread-create analogue).
  uint64_t NewTop = StackNext.fetch_sub(StackSize, std::memory_order_relaxed);
  assert(NewTop - StackSize > DataBase && "stack space exhausted");
  return NewTop - 64; // small top redzone
}

//===----------------------------------------------------------------------===//
// Syscall output
//===----------------------------------------------------------------------===//

void Machine::appendOutput(const std::string &S) {
  std::lock_guard<std::mutex> Guard(OutputLock);
  Output += S;
}

std::string Machine::takeOutput() {
  std::lock_guard<std::mutex> Guard(OutputLock);
  return std::move(Output);
}

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

uint64_t Machine::findFunction(const std::string &Name) const {
  // Guest dlsym resolves symbols while dlopen may be appending to
  // Mapped from another thread; the walk must hold the module lock.
  std::lock_guard<std::mutex> Guard(ModuleLock);
  for (const MappedModule &M : Mapped) {
    if (M.Retired) // dlclosed modules are invisible to symbol lookup
      continue;
    if (const FunctionInfo *F = M.Obj->findFunction(Name))
      return M.CodeBase + F->CodeOffset;
  }
  return 0;
}

uint64_t Machine::dlsymLookup(int64_t Handle, const std::string &Name) const {
  {
    std::lock_guard<std::mutex> Guard(ModuleLock);
    if (Handle >= 0 && static_cast<size_t>(Handle) < Mapped.size()) {
      const MappedModule &M = Mapped[static_cast<size_t>(Handle)];
      if (M.Retired) // stale handle to a dlclosed module
        return 0;
      if (const FunctionInfo *F = M.Obj->findFunction(Name))
        return M.CodeBase + F->CodeOffset;
      return 0;
    }
  }
  return findFunction(Name);
}

VMTierStats Machine::vmStats() const {
  VMTierStats S;
  S.InterpInstrs = StatInterpInstrs.load(std::memory_order_relaxed);
  S.ThreadedInstrs = StatThreadedInstrs.load(std::memory_order_relaxed);
  S.TraceInstrs = StatTraceInstrs.load(std::memory_order_relaxed);
  S.FusedChecks = StatFusedChecks.load(std::memory_order_relaxed);
  S.TraceHits = StatTraceHits.load(std::memory_order_relaxed);
  S.TracesCompiled = StatTracesCompiled.load(std::memory_order_relaxed);
  S.TracesInvalidated = StatTracesInvalidated.load(std::memory_order_relaxed);
  S.SegmentsBuilt = StatSegmentsBuilt.load(std::memory_order_relaxed);
  return S;
}

void Machine::creditTierStats(const VMTierStats &S) {
  auto Add = [](std::atomic<uint64_t> &C, uint64_t V) {
    if (V)
      C.fetch_add(V, std::memory_order_relaxed);
  };
  Add(StatInterpInstrs, S.InterpInstrs);
  Add(StatThreadedInstrs, S.ThreadedInstrs);
  Add(StatTraceInstrs, S.TraceInstrs);
  Add(StatFusedChecks, S.FusedChecks);
  Add(StatTraceHits, S.TraceHits);
  Add(StatTracesCompiled, S.TracesCompiled);
  Add(StatTracesInvalidated, S.TracesInvalidated);
  Add(StatSegmentsBuilt, S.SegmentsBuilt);
}

bool Machine::makeThread(const std::string &Name, Thread &T) {
  uint64_t Entry = findFunction(Name);
  if (!Entry)
    return false;
  T = Thread();
  T.PC = Entry;
  T.Regs[visa::RegSP] = allocStack();
  return true;
}
