#!/bin/sh
# Runs the deterministic schedule-exploration checker over the
# transaction layer as a CI gate:
#
#   - exhaustive DFS (preemption bound 2) over all seven built-in
#     scenarios: every interleaving's txCheck results must match a
#     linearization point of the update sequence, observed IDs must
#     carry the reserved-bit signature, and txCheckSlow must stay
#     within its seqlock retry bound;
#   - a seeded 10k-walk random exploration per scenario, for coverage
#     beyond the preemption bound at fixed cost;
#   - mutant detection: the skip-grace mutant (dlclose range reuse
#     without waiting out the reclamation grace period) MUST be caught
#     by the unload scenario as a torn use-after-retire — a checker
#     that finds no violation there proves nothing about unload safety.
#
# Any violation prints a replayable schedule; reproduce with
#   mcfi-schedcheck --scenario NAME --replay 'SCHEDULE' --trace
# and shrink it first with --minimize 'SCHEDULE'.
#
# Usage: tools/sched-check.sh [mcfi-schedcheck-binary]
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
SCHEDCHECK=${1:-"$ROOT/build/tools/mcfi-schedcheck"}

status=0

echo "== exhaustive exploration (preemption bound 2) =="
if ! "$SCHEDCHECK" --scenario all --exhaustive --bound 2 --keep-going; then
  status=1
fi

echo "== seeded random walks (10000 per scenario, seed 1) =="
if ! "$SCHEDCHECK" --scenario all --random 10000 --seed 1 --keep-going; then
  status=1
fi

echo "== skip-grace mutant must be caught (unload use-after-retire) =="
if "$SCHEDCHECK" --scenario unload --exhaustive --bound 2 \
    --mutant-skip-grace >/dev/null 2>&1; then
  echo "sched-check: unload scenario FAILED to catch the skip-grace mutant"
  status=1
else
  echo "scenario unload       mutant-skip-grace: caught (use-after-retire)"
fi

if [ "$status" -ne 0 ]; then
  echo "sched-check: FAILED (replay schedules printed above)"
else
  echo "sched-check: all scenarios clean"
fi
exit "$status"
