file(REMOVE_RECURSE
  "libmcfi_toolchain.a"
)
