//===- minic/Sema.cpp - MiniC semantic analysis ----------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Sema.h"

#include "ctypes/TypeParser.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace mcfi;
using namespace mcfi::minic;

namespace {

/// A lexical scope mapping names to variable declarations.
using Scope = std::unordered_map<std::string, VarDecl *>;

class SemaImpl {
public:
  SemaImpl(Program &Prog, std::vector<std::string> &Errors)
      : Prog(Prog), Ctx(Prog.getTypes()), Errors(Errors) {}

  bool run() {
    declareBuiltins();

    // Global scope: global variables.
    Scopes.emplace_back();
    for (VarDecl *G : Prog.Globals) {
      if (Scopes.back().count(G->getName()))
        error(G->getLoc(), "redefinition of global '" + G->getName() + "'");
      Scopes.back()[G->getName()] = G;
      if (G->getInit()) {
        Expr *Init = check(G->getInit());
        if (Init)
          G->setInit(coerce(Init, G->getType()));
      }
    }

    for (FuncDecl *F : Prog.Functions) {
      if (!F->isDefined())
        continue;
      CurFunc = F;
      Labels.clear();
      Gotos.clear();
      Scopes.emplace_back();
      for (VarDecl *P : F->getParams()) {
        if (!P->getName().empty())
          Scopes.back()[P->getName()] = P;
      }
      checkStmt(F->getBody());
      for (const auto &[Name, Loc] : Gotos)
        if (!Labels.count(Name))
          error(Loc, "goto to undefined label '" + Name + "'");
      Scopes.pop_back();
      CurFunc = nullptr;
    }
    return !HadError;
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) {
    HadError = true;
    Errors.push_back(formatString("line %u: %s", Loc.Line, Msg.c_str()));
  }

  //===--------------------------------------------------------------------===//
  // Builtins
  //===--------------------------------------------------------------------===//

  void declareBuiltin(const char *Name, BuiltinKind Kind,
                      const char *TypeText) {
    if (Prog.findFunction(Name))
      return; // user redeclared it; keep their declaration as the builtin
    std::string Err;
    const Type *T = parseType(TypeText, Ctx, &Err);
    assert(T && "builtin type failed to parse");
    const auto *FT = cast<FunctionType>(T);
    std::vector<VarDecl *> Params;
    for (const Type *P : FT->getParams())
      Params.push_back(Prog.makeVar({0, 0}, "", P, false));
    FuncDecl *F = Prog.makeFunc({0, 0}, Name, FT, std::move(Params));
    F->setBuiltin(Kind);
    Prog.Functions.push_back(F);
  }

  void declareBuiltins() {
    declareBuiltin("malloc", BuiltinKind::Malloc, "void*(long)");
    declareBuiltin("free", BuiltinKind::Free, "void(void*)");
    declareBuiltin("setjmp", BuiltinKind::Setjmp, "int(long*)");
    declareBuiltin("longjmp", BuiltinKind::Longjmp, "void(long*,int)");
    declareBuiltin("signal", BuiltinKind::Signal, "void(int,void(*)(int))");
    declareBuiltin("raise", BuiltinKind::Raise, "void(int)");
    declareBuiltin("print_int", BuiltinKind::PrintInt, "void(long)");
    declareBuiltin("print_str", BuiltinKind::PrintStr, "void(char*)");
    declareBuiltin("exit", BuiltinKind::Exit, "void(int)");
    declareBuiltin("dlopen", BuiltinKind::Dlopen, "long(int)");
    declareBuiltin("dlsym", BuiltinKind::Dlsym, "void*(long,char*)");
    declareBuiltin("dlclose", BuiltinKind::Dlclose, "int(long)");
    // Mark builtins whose kind was attached to a user declaration.
    struct {
      const char *Name;
      BuiltinKind Kind;
    } Table[] = {
        {"malloc", BuiltinKind::Malloc},   {"free", BuiltinKind::Free},
        {"setjmp", BuiltinKind::Setjmp},   {"longjmp", BuiltinKind::Longjmp},
        {"signal", BuiltinKind::Signal},   {"raise", BuiltinKind::Raise},
        {"print_int", BuiltinKind::PrintInt},
        {"print_str", BuiltinKind::PrintStr},
        {"exit", BuiltinKind::Exit},       {"dlopen", BuiltinKind::Dlopen},
        {"dlsym", BuiltinKind::Dlsym},     {"dlclose", BuiltinKind::Dlclose},
    };
    for (const auto &Row : Table)
      if (FuncDecl *F = Prog.findFunction(Row.Name))
        if (!F->isDefined())
          F->setBuiltin(Row.Kind);
  }

  //===--------------------------------------------------------------------===//
  // Name lookup
  //===--------------------------------------------------------------------===//

  VarDecl *lookupVar(const std::string &Name) {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Conversions
  //===--------------------------------------------------------------------===//

  bool isArithmetic(const Type *T) { return T->isInt() || T->isFloat(); }

  /// Decays arrays and function designators to pointers, per C.
  Expr *decay(Expr *E) {
    if (const auto *AT = dyn_cast<ArrayType>(E->getType())) {
      auto *C = Prog.makeExpr<CastExpr>(
          E->getLoc(), Ctx.getPointer(AT->getElement()), E, /*Implicit=*/true);
      C->setLValue(false);
      return C;
    }
    if (E->getType()->isFunction()) {
      if (auto *FR = dyn_cast<FuncRefExpr>(E))
        FR->getDecl()->setAddressTaken();
      auto *C = Prog.makeExpr<CastExpr>(
          E->getLoc(), Ctx.getPointer(E->getType()), E, /*Implicit=*/true);
      C->setLValue(false);
      return C;
    }
    return E;
  }

  /// Converts \p E to \p To, inserting an implicit CastExpr when the
  /// types differ. All conversions are permitted MiniC-wide; judging
  /// their safety is the C1 analyzer's job, not Sema's.
  Expr *coerce(Expr *E, const Type *To) {
    E = decay(E);
    if (E->getType() == To)
      return E;
    auto *C = Prog.makeExpr<CastExpr>(E->getLoc(), To, E, /*Implicit=*/true);
    C->setLValue(false);
    return C;
  }

  /// Usual arithmetic conversions, MiniC style: float64 > float32 >
  /// int64 > int32 > smaller.
  const Type *promote(const Type *A, const Type *B) {
    auto Rank = [](const Type *T) -> int {
      if (const auto *F = dyn_cast<FloatType>(T))
        return 100 + static_cast<int>(F->getBitWidth());
      if (const auto *I = dyn_cast<IntType>(T))
        return static_cast<int>(I->getBitWidth());
      return 0;
    };
    const Type *Winner = Rank(A) >= Rank(B) ? A : B;
    // Promote sub-int to int32.
    if (const auto *I = dyn_cast<IntType>(Winner))
      if (I->getBitWidth() < 32)
        return Ctx.getInt32();
    return Winner;
  }

  //===--------------------------------------------------------------------===//
  // Expression checking
  //===--------------------------------------------------------------------===//

  /// Type-checks \p E; returns the (possibly replaced) node, or null on a
  /// hard error. On success the node has a type.
  Expr *check(Expr *E) {
    switch (E->getKind()) {
    case ExprKind::IntLit: {
      auto *IL = cast<IntLitExpr>(E);
      bool Wide = IL->getValue() > INT32_MAX || IL->getValue() < INT32_MIN;
      E->setType(Wide ? Ctx.getInt64() : Ctx.getInt32());
      return E;
    }
    case ExprKind::StrLit:
      E->setType(Ctx.getPointer(Ctx.getChar()));
      return E;
    case ExprKind::NameRef: {
      auto *NR = cast<NameRefExpr>(E);
      if (VarDecl *V = lookupVar(NR->getName())) {
        auto *Ref = Prog.makeExpr<VarRefExpr>(NR->getLoc(), V);
        Ref->setType(V->getType());
        Ref->setLValue(true);
        return Ref;
      }
      if (FuncDecl *F = Prog.findFunction(NR->getName())) {
        auto *Ref = Prog.makeExpr<FuncRefExpr>(NR->getLoc(), F);
        Ref->setType(F->getType());
        return Ref;
      }
      error(NR->getLoc(), "use of undeclared identifier '" + NR->getName() +
                              "'");
      return nullptr;
    }
    case ExprKind::VarRef:
    case ExprKind::FuncRef:
      return E; // already resolved
    case ExprKind::Unary:
      return checkUnary(cast<UnaryExpr>(E));
    case ExprKind::Binary:
      return checkBinary(cast<BinaryExpr>(E));
    case ExprKind::Assign:
      return checkAssign(cast<AssignExpr>(E));
    case ExprKind::Cond:
      return checkCond(cast<CondExpr>(E));
    case ExprKind::Call:
      return checkCall(cast<CallExpr>(E));
    case ExprKind::Index:
      return checkIndex(cast<IndexExpr>(E));
    case ExprKind::Member:
      return checkMember(cast<MemberExpr>(E));
    case ExprKind::Cast: {
      auto *C = cast<CastExpr>(E);
      Expr *Sub = check(C->getSub());
      if (!Sub)
        return nullptr;
      C->setSub(decay(Sub));
      return C;
    }
    case ExprKind::SizeofType:
      E->setType(Ctx.getInt64());
      return E;
    }
    mcfi_unreachable("covered switch");
  }

  Expr *checkUnary(UnaryExpr *U) {
    Expr *Sub = check(U->getSub());
    if (!Sub)
      return nullptr;
    switch (U->getOp()) {
    case UnaryOp::Neg:
    case UnaryOp::BitNot: {
      Sub = decay(Sub);
      if (!isArithmetic(Sub->getType())) {
        error(U->getLoc(), "operand of unary arithmetic must be arithmetic");
        return nullptr;
      }
      U->setSub(Sub);
      U->setType(promote(Sub->getType(), Ctx.getInt32()));
      return U;
    }
    case UnaryOp::LogicalNot:
      Sub = decay(Sub);
      U->setSub(Sub);
      U->setType(Ctx.getInt32());
      return U;
    case UnaryOp::Deref: {
      Sub = decay(Sub);
      const auto *PT = dyn_cast<PointerType>(Sub->getType());
      if (!PT) {
        error(U->getLoc(), "cannot dereference non-pointer");
        return nullptr;
      }
      U->setSub(Sub);
      U->setType(PT->getPointee());
      U->setLValue(!PT->getPointee()->isFunction());
      return U;
    }
    case UnaryOp::AddrOf: {
      if (auto *FR = dyn_cast<FuncRefExpr>(Sub)) {
        FR->getDecl()->setAddressTaken();
        U->setSub(Sub);
        U->setType(Ctx.getPointer(FR->getDecl()->getType()));
        return U;
      }
      if (!Sub->isLValue()) {
        error(U->getLoc(), "cannot take the address of an rvalue");
        return nullptr;
      }
      U->setSub(Sub);
      U->setType(Ctx.getPointer(Sub->getType()));
      return U;
    }
    }
    mcfi_unreachable("covered switch");
  }

  Expr *checkBinary(BinaryExpr *B) {
    Expr *L = check(B->getLHS());
    Expr *R = check(B->getRHS());
    if (!L || !R)
      return nullptr;
    L = decay(L);
    R = decay(R);

    switch (B->getOp()) {
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      B->setLHS(L);
      B->setRHS(R);
      B->setType(Ctx.getInt32());
      return B;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      if (isArithmetic(L->getType()) && isArithmetic(R->getType())) {
        const Type *Common = promote(L->getType(), R->getType());
        L = coerce(L, Common);
        R = coerce(R, Common);
      } else if (L->getType()->isPointer() && isArithmetic(R->getType())) {
        R = coerce(R, L->getType()); // ptr vs NULL/0
      } else if (R->getType()->isPointer() && isArithmetic(L->getType())) {
        L = coerce(L, R->getType());
      }
      B->setLHS(L);
      B->setRHS(R);
      B->setType(Ctx.getInt32());
      return B;
    }
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      // Pointer arithmetic.
      if (L->getType()->isPointer() && isArithmetic(R->getType())) {
        B->setLHS(L);
        B->setRHS(coerce(R, Ctx.getInt64()));
        B->setType(L->getType());
        return B;
      }
      if (B->getOp() == BinaryOp::Add && R->getType()->isPointer() &&
          isArithmetic(L->getType())) {
        B->setLHS(coerce(L, Ctx.getInt64()));
        B->setRHS(R);
        B->setType(R->getType());
        return B;
      }
      if (B->getOp() == BinaryOp::Sub && L->getType()->isPointer() &&
          R->getType()->isPointer()) {
        B->setLHS(L);
        B->setRHS(R);
        B->setType(Ctx.getInt64());
        return B;
      }
      [[fallthrough]];
    }
    default: {
      if (!isArithmetic(L->getType()) || !isArithmetic(R->getType())) {
        error(B->getLoc(), "invalid operands to binary operator");
        return nullptr;
      }
      const Type *Common = promote(L->getType(), R->getType());
      B->setLHS(coerce(L, Common));
      B->setRHS(coerce(R, Common));
      B->setType(Common);
      return B;
    }
    }
  }

  Expr *checkAssign(AssignExpr *A) {
    Expr *L = check(A->getLHS());
    Expr *R = check(A->getRHS());
    if (!L || !R)
      return nullptr;
    if (!L->isLValue()) {
      error(A->getLoc(), "assignment target is not an lvalue");
      return nullptr;
    }
    if (L->getType()->isRecord()) {
      error(A->getLoc(), "struct assignment is not supported in MiniC");
      return nullptr;
    }
    A->setLHS(L);
    A->setRHS(coerce(R, L->getType()));
    A->setType(L->getType());
    return A;
  }

  Expr *checkCond(CondExpr *C) {
    Expr *Cond = check(C->getCond());
    Expr *T = check(C->getThen());
    Expr *E = check(C->getElse());
    if (!Cond || !T || !E)
      return nullptr;
    Cond = decay(Cond);
    T = decay(T);
    E = decay(E);
    const Type *Result;
    if (T->getType() == E->getType()) {
      Result = T->getType();
    } else if (isArithmetic(T->getType()) && isArithmetic(E->getType())) {
      Result = promote(T->getType(), E->getType());
    } else if (T->getType()->isPointer() && isArithmetic(E->getType())) {
      Result = T->getType();
    } else if (E->getType()->isPointer() && isArithmetic(T->getType())) {
      Result = E->getType();
    } else {
      Result = T->getType(); // e.g. two pointer types: pick the first
    }
    C->setCond(Cond);
    C->setThen(coerce(T, Result));
    C->setElse(coerce(E, Result));
    C->setType(Result);
    return C;
  }

  Expr *checkCall(CallExpr *Call) {
    Expr *Callee = check(Call->getCallee());
    if (!Callee)
      return nullptr;

    const FunctionType *FT = nullptr;
    if (auto *FR = dyn_cast<FuncRefExpr>(Callee)) {
      // Direct call: does NOT take the function's address.
      FT = FR->getDecl()->getType();
    } else {
      Callee = decay(Callee);
      if (const auto *PT = dyn_cast<PointerType>(Callee->getType()))
        FT = dyn_cast<FunctionType>(PT->getPointee());
      else if (const auto *F = dyn_cast<FunctionType>(Callee->getType()))
        FT = F; // (*fp)(...) after deref
      if (!FT) {
        error(Call->getLoc(), "called object is not a function");
        return nullptr;
      }
    }
    Call->setCallee(Callee);
    Call->setCalleeFnType(FT);

    const auto &Params = FT->getParams();
    const auto &Args = Call->getArgs();
    if (Args.size() < Params.size() ||
        (Args.size() > Params.size() && !FT->isVariadic())) {
      error(Call->getLoc(),
            formatString("call expects %zu argument(s), got %zu",
                         Params.size(), Args.size()));
      return nullptr;
    }
    for (size_t I = 0; I != Args.size(); ++I) {
      Expr *Arg = check(Args[I]);
      if (!Arg)
        return nullptr;
      if (I < Params.size())
        Arg = coerce(Arg, Params[I]);
      else
        Arg = decay(Arg); // varargs: pass as-is
      Call->setArg(I, Arg);
    }
    Call->setType(FT->getReturnType());
    return Call;
  }

  Expr *checkIndex(IndexExpr *Ix) {
    Expr *Base = check(Ix->getBase());
    Expr *Idx = check(Ix->getIdx());
    if (!Base || !Idx)
      return nullptr;
    Base = decay(Base);
    const auto *PT = dyn_cast<PointerType>(Base->getType());
    if (!PT) {
      error(Ix->getLoc(), "subscripted value is not a pointer or array");
      return nullptr;
    }
    Ix->setBase(Base);
    Ix->setIdx(coerce(Idx, Ctx.getInt64()));
    Ix->setType(PT->getPointee());
    Ix->setLValue(true);
    return Ix;
  }

  Expr *checkMember(MemberExpr *M) {
    Expr *Base = check(M->getBase());
    if (!Base)
      return nullptr;
    const RecordType *R = nullptr;
    if (M->isArrow()) {
      Base = decay(Base);
      const auto *PT = dyn_cast<PointerType>(Base->getType());
      if (PT)
        R = dyn_cast<RecordType>(PT->getPointee());
    } else {
      R = dyn_cast<RecordType>(Base->getType());
    }
    if (!R || !R->isComplete()) {
      error(M->getLoc(), "member access on a non-record or incomplete type");
      return nullptr;
    }
    const auto &Fields = R->getFields();
    for (unsigned I = 0; I != Fields.size(); ++I) {
      if (Fields[I].Name == M->getField()) {
        M->setBase(Base);
        M->setResolved(R, I);
        M->setType(Fields[I].FieldType);
        M->setLValue(true);
        return M;
      }
    }
    error(M->getLoc(), "no field named '" + M->getField() + "' in record '" +
                           R->getTag() + "'");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Statement checking
  //===--------------------------------------------------------------------===//

  void checkStmt(Stmt *S) {
    switch (S->getKind()) {
    case StmtKind::Block: {
      Scopes.emplace_back();
      for (Stmt *Sub : cast<BlockStmt>(S)->getStmts())
        checkStmt(Sub);
      Scopes.pop_back();
      return;
    }
    case StmtKind::Decl: {
      VarDecl *V = cast<DeclStmt>(S)->getDecl();
      if (V->getInit()) {
        Expr *Init = check(V->getInit());
        if (Init)
          V->setInit(coerce(Init, V->getType()));
      }
      Scopes.back()[V->getName()] = V;
      return;
    }
    case StmtKind::Expr: {
      auto *ES = cast<ExprStmt>(S);
      if (Expr *E = check(ES->getExpr()))
        ES->setExpr(E);
      return;
    }
    case StmtKind::If: {
      auto *If = cast<IfStmt>(S);
      if (Expr *C = check(If->getCond()))
        If->setCond(decay(C));
      checkStmt(If->getThen());
      if (If->getElse())
        checkStmt(If->getElse());
      return;
    }
    case StmtKind::While:
    case StmtKind::DoWhile: {
      auto *W = cast<WhileStmt>(S);
      if (Expr *C = check(W->getCond()))
        W->setCond(decay(C));
      checkStmt(W->getBody());
      return;
    }
    case StmtKind::For: {
      auto *F = cast<ForStmt>(S);
      Scopes.emplace_back();
      if (F->getInit())
        checkStmt(F->getInit());
      if (F->getCond())
        if (Expr *C = check(F->getCond()))
          F->setCond(decay(C));
      if (F->getInc())
        if (Expr *I = check(F->getInc()))
          F->setInc(I);
      checkStmt(F->getBody());
      Scopes.pop_back();
      return;
    }
    case StmtKind::Return: {
      auto *R = cast<ReturnStmt>(S);
      const Type *RetTy = CurFunc->getType()->getReturnType();
      if (R->getValue()) {
        if (RetTy->isVoid()) {
          error(R->getLoc(), "void function returns a value");
          return;
        }
        if (Expr *V = check(R->getValue()))
          R->setValue(coerce(V, RetTy));
      } else if (!RetTy->isVoid()) {
        error(R->getLoc(), "non-void function returns without a value");
      }
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
      return;
    case StmtKind::Switch: {
      auto *Sw = cast<SwitchStmt>(S);
      if (Expr *C = check(Sw->getCond()))
        Sw->setCond(coerce(C, Ctx.getInt64()));
      unsigned Defaults = 0;
      std::unordered_set<int64_t> Seen;
      for (SwitchArm &Arm : Sw->getArms()) {
        if (!Arm.Value)
          ++Defaults;
        else if (!Seen.insert(*Arm.Value).second)
          error(Sw->getLoc(), "duplicate case value");
        for (Stmt *Sub : Arm.Stmts)
          checkStmt(Sub);
      }
      if (Defaults > 1)
        error(Sw->getLoc(), "multiple default arms in switch");
      return;
    }
    case StmtKind::Goto:
      Gotos.emplace_back(cast<GotoStmt>(S)->getLabel(), S->getLoc());
      return;
    case StmtKind::Label: {
      auto *L = cast<LabelStmt>(S);
      if (!Labels.insert(L->getName()).second)
        error(L->getLoc(), "duplicate label '" + L->getName() + "'");
      return;
    }
    case StmtKind::Asm: {
      auto *A = cast<AsmStmt>(S);
      for (AsmAnnotation &Ann : A->getAnnotations()) {
        std::string Err;
        Ann.AnnotatedType = parseType(Ann.TypeText, Ctx, &Err);
        if (!Ann.AnnotatedType)
          error(A->getLoc(), "bad asm type annotation: " + Err);
      }
      return;
    }
    }
    mcfi_unreachable("covered switch");
  }

  Program &Prog;
  TypeContext &Ctx;
  std::vector<std::string> &Errors;
  std::vector<Scope> Scopes;
  FuncDecl *CurFunc = nullptr;
  std::unordered_set<std::string> Labels;
  std::vector<std::pair<std::string, SourceLoc>> Gotos;
  bool HadError = false;
};

} // namespace

bool mcfi::minic::analyze(Program &Prog, std::vector<std::string> &Errors) {
  return SemaImpl(Prog, Errors).run();
}
