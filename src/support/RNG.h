//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64-seeded xoshiro256**) used by the
/// workload generator and the property-test harnesses. Determinism matters:
/// every synthetic benchmark and every fuzzing run must be reproducible from
/// a seed so that experiment tables are stable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_SUPPORT_RNG_H
#define MCFI_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace mcfi {

/// Deterministic xoshiro256** generator.
class RNG {
public:
  explicit RNG(uint64_t Seed) {
    // splitmix64 expansion of the seed into the four state words.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a nonzero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + below(Hi - Lo + 1);
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return below(100) < Percent; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace mcfi

#endif // MCFI_SUPPORT_RNG_H
