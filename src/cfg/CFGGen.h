//===- cfg/CFGGen.h - Type-matching CFG generation --------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MCFI's CFG generator (paper Sec. 6): merges the auxiliary type info of
/// all loaded modules and produces the control-flow policy —
/// equivalence-class numbers for every indirect-branch target (Tary side)
/// and every indirect-branch site (Bary side).
///
/// Edges:
///  - an indirect call through a pointer of type t* may target any
///    address-taken function whose type structurally matches t (with the
///    variadic fixed-prefix rule);
///  - indirect tail calls are handled identically;
///  - returns target the return sites of call sites that may (directly,
///    indirectly, or through tail-call chains) invoke the returning
///    function;
///  - PLT entries connect to the function with the matching name;
///  - setjmp return sites are collected for the runtime's longjmp
///    validation;
///  - signal handlers may "return" to the runtime's sigreturn trampoline
///    (a function named "sig$return" exported by the bootstrap module).
///
/// Target sets that overlap are merged into equivalence classes exactly
/// as in the classic CFI (union-find), and each class receives an ECN.
/// ECN assignment is *stable under module loads*: regenerating the CFG
/// with extra modules appended keeps every surviving class's number (new
/// classes get fresh, higher numbers), so the linker can usually install
/// a post-dlopen policy as a pure extension of the previous one.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_CFG_CFGGEN_H
#define MCFI_CFG_CFGGEN_H

#include "module/MCFIObject.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mcfi {

/// A module mapped into the code region at a base address, as the
/// loader/linker sees it.
///
/// A view with Obj == nullptr is a *tombstone*: the slot of a dlclosed
/// module. It contributes TombstoneSites branch-site positions — each
/// carrying no ECN (BranchECN -1, i.e. a zeroed table entry, exactly the
/// state the retire transaction left behind) — and nothing else: no
/// functions, no IBTs, no call sites, no edges. Tombstones keep the
/// global site-index space positionally stable, so already-sealed
/// surviving modules' patched Bary indexes remain correct, while the
/// merged CFG is exactly what it would be had the module never loaded.
struct LoadedModuleView {
  const MCFIObject *Obj = nullptr;
  uint64_t CodeBase = 0;
  /// Branch-site slots held by a tombstone (ignored when Obj != null).
  uint32_t TombstoneSites = 0;
};

/// The generated control-flow policy.
struct CFGPolicy {
  /// ECN for every indirect-branch target (absolute code address).
  std::unordered_map<uint64_t, uint32_t> TargetECN;

  /// ECN per global branch-site index; a site with an empty target set
  /// carries the reserved EmptyClassECN, which no target ever holds, so
  /// its check can never pass. Global index = module's SiteIndexBase +
  /// module-local SiteId.
  std::vector<int64_t> BranchECN;

  /// Post-merge target-class size per global branch-site index (the
  /// enforced target-set size used by the AIR metric).
  std::vector<uint64_t> BranchClassSize;

  /// Per-module base of the global branch-site index space (parallel to
  /// the module list passed to generateCFG). The loader patches each
  /// BaryIndex32 relocation with SiteIndexBase[m] + SiteId.
  std::vector<uint32_t> SiteIndexBase;

  /// Absolute addresses of setjmp return sites (longjmp validation).
  std::vector<uint64_t> SetjmpRetSites;

  /// Statistics (paper Table 3).
  uint64_t NumIBs = 0;  ///< instrumented indirect branches
  uint64_t NumIBTs = 0; ///< indirect-branch targets
  uint64_t NumEQCs = 0; ///< equivalence classes among IBTs

  /// The Tary lookup used by update transactions (Fig. 3's getTaryECN):
  /// returns the ECN for absolute code address \p Addr or -1.
  int64_t getTaryECN(uint64_t Addr) const {
    auto It = TargetECN.find(Addr);
    return It == TargetECN.end() ? -1 : static_cast<int64_t>(It->second);
  }

  /// Fig. 3's getBaryECN over global site indexes.
  int64_t getBaryECN(uint32_t Index) const {
    return Index < BranchECN.size() ? BranchECN[Index] : -1;
  }
};

/// Canonical signature of a signal handler, used for the sigreturn
/// trampoline edge ("void (*)(int)").
extern const char *const SignalHandlerSig;

/// An *intersection-only* sharpening of the type-matching policy,
/// produced by the interprocedural dataflow engine (dataflow/Dataflow.h).
///
/// Soundness contract: refinement never widens. Every indirect branch
/// whose (owner function, pointer signature) key appears in Allowed has
/// its type-matched target set intersected with the named set; branches
/// with no key keep their full type-matched set, so modules outside the
/// analysis (e.g. the bootstrap runtime) are unaffected. Address-taken
/// functions that survive in no target set and are not pinned by
/// KeepTargets are dropped from the IBT universe — they were only
/// reachable through edges the flow analysis proved dead, and dropping
/// them is what shrinks equivalence classes (per-site intersection alone
/// cannot: overlapping sets re-merge under the union-find coarsening).
struct CFGRefinement {
  /// Allowed indirect-branch target *names*, keyed by (owner function
  /// name, canonical pointer signature) — the same key triple aux-info
  /// branch sites, call sites, and tail calls carry.
  std::map<std::pair<std::string, std::string>, std::set<std::string>> Allowed;

  /// Functions that must remain indirect-branch targets even when no
  /// refined set references them (escapees: values handed to the
  /// runtime or to code outside the analyzed module set).
  std::set<std::string> KeepTargets;
};

/// Generates the combined CFG policy for \p Modules (in load order).
/// With \p Refinement, target sets are intersected as described above;
/// passing nullptr yields the paper's plain type-matching policy.
///
/// \p Workers > 1 runs the embarrassingly parallel merge phases (call-site
/// resolution and per-branch target-set computation) on a worker pool.
/// The result is *identical* to the serial result for any worker count:
/// parallel phases only ever write index-addressed slots, and every
/// order-sensitive step (equivalence-class numbering, setjmp site
/// collection, tail-call closure) runs serially over those slots in
/// global index order.
CFGPolicy generateCFG(const std::vector<LoadedModuleView> &Modules,
                      const CFGRefinement *Refinement = nullptr,
                      unsigned Workers = 1);

} // namespace mcfi

#endif // MCFI_CFG_CFGGEN_H
