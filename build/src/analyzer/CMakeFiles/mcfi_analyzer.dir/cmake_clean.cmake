file(REMOVE_RECURSE
  "CMakeFiles/mcfi_analyzer.dir/Analyzer.cpp.o"
  "CMakeFiles/mcfi_analyzer.dir/Analyzer.cpp.o.d"
  "libmcfi_analyzer.a"
  "libmcfi_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfi_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
