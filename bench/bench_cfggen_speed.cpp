//===- bench/bench_cfggen_speed.cpp - CFG generation speed ----------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// CFG-generation speed (Sec. 7): the type-matching approach is fast
/// enough for *dynamic* linking — the paper reports ~150 ms for gcc
/// (2.7 MB of code). We time generateCFG over each linked benchmark and
/// report milliseconds against code size; the shape to reproduce is
/// sub-second generation that scales roughly linearly with module size.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "metrics/Harness.h"

#include <chrono>
#include <cstdio>

using namespace mcfi;

int main() {
  benchHeader("Type-matching CFG generation speed", "Sec. 7's 150ms-for-gcc");

  TablePrinter Table;
  Table.addRow({"benchmark", "code bytes", "IBs", "IBTs", "gen time"});

  for (const BenchProfile &P : specProfiles()) {
    std::string Source = generateWorkload(P, WorkloadVariant::Fixed);
    BuiltProgram BP = buildProgram({Source});
    if (!BP.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", P.Name.c_str(),
                   BP.Error.c_str());
      return 1;
    }
    std::vector<LoadedModuleView> Views;
    for (const MappedModule &Mod : BP.M->modules())
      Views.push_back({Mod.Obj.get(), Mod.CodeBase});

    // Best of 5 runs (generation is deterministic).
    double BestMs = 1e99;
    CFGPolicy Policy;
    for (int I = 0; I != 5; ++I) {
      auto T0 = std::chrono::steady_clock::now();
      Policy = generateCFG(Views);
      auto T1 = std::chrono::steady_clock::now();
      BestMs = std::min(
          BestMs, std::chrono::duration<double, std::milli>(T1 - T0).count());
    }
    Table.addRow({P.Name, std::to_string(BP.CodeBytes),
                  std::to_string(Policy.NumIBs),
                  std::to_string(Policy.NumIBTs),
                  formatString("%.2f ms", BestMs)});
  }
  Table.print();
  std::printf("\npaper: ~150 ms for gcc's 2.7 MB; at our ~10x smaller scale\n"
              "generation must stay well under that, fast enough to run\n"
              "inside dlopen\n");
  return 0;
}
