//===- tables/IDTables.cpp - Bary/Tary tables and transactions ------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every atomic access in the transaction paths is bracketed by the
// SchedPoint seam (schedYield before, schedObserve after) so the
// deterministic schedule checker can interleave logical threads at
// exactly these points. In production builds both calls inline to
// nothing; see tables/SchedPoint.h.
//
//===----------------------------------------------------------------------===//

#include "tables/IDTables.h"

#include "support/Assert.h"

using namespace mcfi;

IDTables::IDTables(uint64_t CodeCapacity, uint32_t BaryCapacity)
    : TaryEntries((CodeCapacity + 3) / 4), BaryEntries(BaryCapacity) {
  for (auto &E : TaryEntries)
    E.store(0, std::memory_order_relaxed);
  for (auto &E : BaryEntries)
    E.store(0, std::memory_order_relaxed);
}

uint32_t IDTables::taryRead(uint64_t CodeOffset) const {
  uint64_t Index = CodeOffset >> 2;
  if (Index >= TaryEntries.size())
    return 0;
  schedYield(SchedOp::LoadRelaxed, SchedObject::Tary, Index);
  uint32_t Lo = TaryEntries[Index].load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::Tary, Index, Lo);
  unsigned Misalign = CodeOffset & 3;
  if (Misalign == 0)
    return Lo;
  // Misaligned read: synthesize the 4 bytes starting at the offset from
  // the two adjacent aligned entries. The reserved-bit pattern makes the
  // result invalid (its low byte is a non-low byte of a real ID, whose
  // LSB is 0), exactly as in the paper's byte-addressed table.
  uint32_t Hi = 0;
  if (Index + 1 < TaryEntries.size()) {
    schedYield(SchedOp::LoadRelaxed, SchedObject::Tary, Index + 1);
    Hi = TaryEntries[Index + 1].load(std::memory_order_relaxed);
    schedObserve(SchedOp::LoadRelaxed, SchedObject::Tary, Index + 1, Hi);
  }
  unsigned Shift = 8 * Misalign;
  return (Lo >> Shift) | (Hi << (32 - Shift));
}

uint32_t IDTables::baryRead(uint32_t Index) const {
  if (Index >= BaryEntries.size())
    return 0;
  schedYield(SchedOp::LoadRelaxed, SchedObject::Bary, Index);
  uint32_t ID = BaryEntries[Index].load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::Bary, Index, ID);
  return ID;
}

CheckResult IDTables::txCheck(uint32_t BaryIndex,
                              uint64_t TargetOffset) const {
  // Hot path mirrors Fig. 4's fast case exactly: one branch-ID load, one
  // target-ID load, one comparison. Everything else lives in the cold
  // slow path, as in the instrumented sequence.
  uint64_t Index = TargetOffset >> 2;
  if (__builtin_expect((TargetOffset & 3) == 0 && Index < TaryEntries.size() &&
                           BaryIndex < BaryEntries.size(),
                       1)) {
    schedYield(SchedOp::LoadRelaxed, SchedObject::Bary, BaryIndex);
    uint32_t BranchID = BaryEntries[BaryIndex].load(std::memory_order_relaxed);
    schedObserve(SchedOp::LoadRelaxed, SchedObject::Bary, BaryIndex, BranchID);
    schedYield(SchedOp::LoadAcquire, SchedObject::Tary, Index);
    uint32_t TargetID = TaryEntries[Index].load(std::memory_order_acquire);
    schedObserve(SchedOp::LoadAcquire, SchedObject::Tary, Index, TargetID);
    if (__builtin_expect(BranchID == TargetID, 1))
      // A correctly patched module always loads a valid branch ID (the
      // loader embeds the right Bary indexes); an invalid equal pair
      // means the site was never installed, which fails closed.
      return isValidID(BranchID) ? CheckResult::Pass
                                 : CheckResult::ViolationInvalid;
  }
  return txCheckSlow(BaryIndex, TargetOffset);
}

CheckResult IDTables::txCheckSlow(uint32_t BaryIndex,
                                  uint64_t TargetOffset) const {
  for (;;) {
    // Seqlock read: if UpdateSeq is even and unchanged across the table
    // reads, no update transaction overlapped them, so a cross-version
    // pair is genuinely stale (e.g. the target outlived a shrinking
    // update) and must be reported as a violation rather than retried
    // forever.
    //
    // This LoadAcquire of UpdateSeq is the loop-top scheduling point:
    // the retry loop carries no local state across iterations, which the
    // schedule checker exploits to fingerprint spin states.
    schedYield(SchedOp::LoadAcquire, SchedObject::UpdateSeq, 0);
    uint64_t Seq = UpdateSeq.load(std::memory_order_acquire);
    schedObserve(SchedOp::LoadAcquire, SchedObject::UpdateSeq, 0, Seq);
    uint32_t BranchID = baryRead(BaryIndex);
    schedYield(SchedOp::FenceAcquire, SchedObject::None, 0);
    std::atomic_thread_fence(std::memory_order_acquire);
    uint32_t TargetID = taryRead(TargetOffset);
    if (BranchID == TargetID) {
      if (!isValidID(BranchID))
        return CheckResult::ViolationInvalid;
      return CheckResult::Pass;
    }
    // "Check:" label of Fig. 4: distinguish invalid target, version
    // race, and genuine ECN mismatch.
    if (!isValidID(TargetID))
      return CheckResult::ViolationInvalid;
    if (sameVersionHalf(BranchID, TargetID))
      return CheckResult::ViolationECN;
    schedYield(SchedOp::FenceAcquire, SchedObject::None, 0);
    std::atomic_thread_fence(std::memory_order_acquire);
    schedYield(SchedOp::LoadRelaxed, SchedObject::UpdateSeq, 0);
    uint64_t CurSeq = UpdateSeq.load(std::memory_order_relaxed);
    schedObserve(SchedOp::LoadRelaxed, SchedObject::UpdateSeq, 0, CurSeq);
    if ((Seq & 1) == 0 && CurSeq == Seq)
      // Version mismatch with no update in flight: one side is stale.
      // An invalid *branch* ID means the site was never (re)installed;
      // otherwise the edge crosses versions and is not in any single
      // installed CFG.
      return isValidID(BranchID) ? CheckResult::ViolationECN
                                 : CheckResult::ViolationInvalid;
    schedYield(SchedOp::RMWRelaxed, SchedObject::SlowRetries, 0);
    uint64_t Retries = SlowRetries.fetch_add(1, std::memory_order_relaxed);
    schedObserve(SchedOp::RMWRelaxed, SchedObject::SlowRetries, 0,
                 Retries + 1);
    // An update transaction is in flight; retry.
  }
}

TxUpdateStatus
IDTables::txUpdate(uint64_t TaryLimitBytes,
                   const std::function<int64_t(uint64_t)> &GetTaryECN,
                   uint32_t BaryCount,
                   const std::function<int64_t(uint32_t)> &GetBaryECN,
                   const std::function<void()> &BetweenTablesHook,
                   TxUpdateStats *Stats) {
  // Update transactions are serialized by a global lock (they are rare);
  // check transactions proceed concurrently and are synchronized only
  // through the version numbers embedded in the IDs.
  std::lock_guard<std::mutex> Guard(UpdateLock);

  // Sec. 5.2's ABA guard: at quiescence only the current version is
  // live, so bumps 1..MaxVersion within an epoch are fresh, but bump
  // MaxVersion+1 lands back on the epoch's starting version, which a
  // stalled check transaction may still hold. Refuse instead of
  // silently wrapping; the runtime must quiesce (every thread observed
  // at a syscall boundary) and resetVersionEpoch() first.
  schedYield(SchedOp::LoadRelaxed, SchedObject::VersionedUpdateCount, 0);
  uint64_t VU = VersionedUpdates.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::VersionedUpdateCount, 0, VU);
  schedYield(SchedOp::LoadRelaxed, SchedObject::EpochBase, 0);
  uint64_t EB = EpochBase.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::EpochBase, 0, EB);
  if (VU - EB >= MaxVersion)
    return TxUpdateStatus::VersionExhausted;

  schedYield(SchedOp::LoadRelaxed, SchedObject::Version, 0);
  uint32_t OldVersion = Version.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::Version, 0, OldVersion);
  uint32_t NewVersion = (OldVersion + 1) & MaxVersion;
  schedYield(SchedOp::StoreRelaxed, SchedObject::Version, 0);
  Version.store(NewVersion, std::memory_order_relaxed);
  schedObserve(SchedOp::StoreRelaxed, SchedObject::Version, 0, NewVersion);
  schedYield(SchedOp::RMWRelaxed, SchedObject::UpdateCount, 0);
  uint64_t Upd = Updates.fetch_add(1, std::memory_order_relaxed);
  schedObserve(SchedOp::RMWRelaxed, SchedObject::UpdateCount, 0, Upd + 1);
  schedYield(SchedOp::RMWRelaxed, SchedObject::VersionedUpdateCount, 0);
  uint64_t VUpd = VersionedUpdates.fetch_add(1, std::memory_order_relaxed);
  schedObserve(SchedOp::RMWRelaxed, SchedObject::VersionedUpdateCount, 0,
               VUpd + 1);

  assert(TaryLimitBytes <= taryCapacityBytes() && "code past table capacity");
  assert(BaryCount <= BaryEntries.size() && "too many branch sites");

  TxUpdateStats Local;
  Local.Version = NewVersion;

  // Mark the update in flight (odd seq) before the first table store.
  schedYield(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0);
  uint64_t Seq = UpdateSeq.fetch_add(1, std::memory_order_release);
  schedObserve(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0, Seq + 1);

  uint64_t Limit = (TaryLimitBytes + 3) / 4;

  // Phase 1: construct the new Tary table locally, then copy it in with
  // relaxed (movnti-style, weakly ordered) stores. Each 4-byte store is
  // individually atomic, which is the only requirement (Fig. 3's
  // copyTaryTable). If the code region shrank, zero the tail of the
  // previous install in the same phase: stale old-version target IDs
  // there would otherwise read as "update in flight" forever.
  auto InstallTary = [&] {
    std::vector<uint32_t> NewTary(Limit, 0);
    for (uint64_t I = 0; I != Limit; ++I) {
      int64_t ECN = GetTaryECN(I * 4);
      if (ECN >= 0) {
        assert(ECN <= static_cast<int64_t>(MaxECN) && "ECN space exhausted");
        NewTary[I] = encodeID(static_cast<uint32_t>(ECN), NewVersion);
      }
    }
    for (uint64_t I = 0; I != Limit; ++I) {
      schedYield(SchedOp::StoreRelaxed, SchedObject::Tary, I);
      TaryEntries[I].store(NewTary[I], std::memory_order_relaxed);
      schedObserve(SchedOp::StoreRelaxed, SchedObject::Tary, I, NewTary[I]);
    }
    Local.TaryWritten = Limit;
    schedYield(SchedOp::LoadRelaxed, SchedObject::InstalledTary, 0);
    uint64_t PrevTaryWords =
        InstalledTaryWords.load(std::memory_order_relaxed);
    schedObserve(SchedOp::LoadRelaxed, SchedObject::InstalledTary, 0,
                 PrevTaryWords);
    for (uint64_t I = Limit; I < PrevTaryWords; ++I) {
      schedYield(SchedOp::StoreRelaxed, SchedObject::Tary, I);
      TaryEntries[I].store(0, std::memory_order_relaxed);
      schedObserve(SchedOp::StoreRelaxed, SchedObject::Tary, I, 0);
      ++Local.TaryCleared;
    }
    schedYield(SchedOp::StoreRelaxed, SchedObject::InstalledTary, 0);
    InstalledTaryWords.store(Limit, std::memory_order_relaxed);
    schedObserve(SchedOp::StoreRelaxed, SchedObject::InstalledTary, 0, Limit);
  };

  // Phase 2: update the Bary table, zeroing any tail left over from a
  // larger previous install.
  auto InstallBary = [&] {
    for (uint32_t I = 0; I != BaryCount; ++I) {
      int64_t ECN = GetBaryECN(I);
      uint32_t ID = 0;
      if (ECN >= 0) {
        assert(ECN <= static_cast<int64_t>(MaxECN) && "ECN space exhausted");
        ID = encodeID(static_cast<uint32_t>(ECN), NewVersion);
      }
      schedYield(SchedOp::StoreRelaxed, SchedObject::Bary, I);
      BaryEntries[I].store(ID, std::memory_order_relaxed);
      schedObserve(SchedOp::StoreRelaxed, SchedObject::Bary, I, ID);
    }
    Local.BaryWritten = BaryCount;
    schedYield(SchedOp::LoadRelaxed, SchedObject::InstalledBary, 0);
    uint32_t PrevBaryCount =
        InstalledBaryCount.load(std::memory_order_relaxed);
    schedObserve(SchedOp::LoadRelaxed, SchedObject::InstalledBary, 0,
                 PrevBaryCount);
    for (uint32_t I = BaryCount; I < PrevBaryCount; ++I) {
      schedYield(SchedOp::StoreRelaxed, SchedObject::Bary, I);
      BaryEntries[I].store(0, std::memory_order_relaxed);
      schedObserve(SchedOp::StoreRelaxed, SchedObject::Bary, I, 0);
      ++Local.BaryCleared;
    }
    schedYield(SchedOp::StoreRelaxed, SchedObject::InstalledBary, 0);
    InstalledBaryCount.store(BaryCount, std::memory_order_relaxed);
    schedObserve(SchedOp::StoreRelaxed, SchedObject::InstalledBary, 0,
                 BaryCount);
  };

  // Memory write barrier between the phases: all Tary stores complete
  // before any Bary store (Fig. 3 line 5) — the linearization point of
  // the update. GOT entry updates are inserted between the two table
  // updates and serialized by another barrier (paper, PLT/GOT
  // discussion).
  auto PhaseBarrierAndHook = [&] {
    schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (BetweenTablesHook) {
      BetweenTablesHook();
      schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
  };

#if MCFI_SCHED_HOOKS
  if (GSchedMutantReorderPhases) {
    // TEST-ONLY MUTANT: Bary before Tary — the store order Fig. 3
    // forbids. Kept only in the instrumented build so the schedule
    // checker can demonstrate it detects the resulting torn reads.
    InstallBary();
    PhaseBarrierAndHook();
    InstallTary();
  } else
#endif
  {
    InstallTary();
    PhaseBarrierAndHook();
    InstallBary();
  }
  schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
  std::atomic_thread_fence(std::memory_order_seq_cst);

  // Update complete (seq back to even).
  schedYield(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0);
  uint64_t EndSeq = UpdateSeq.fetch_add(1, std::memory_order_release);
  schedObserve(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0, EndSeq + 1);

  if (Stats) {
    Local.Incremental = false;
    Local.Micros = Stats->Micros; // caller-owned timing, keep it
    Local.BatchModules = Stats->BatchModules; // caller-owned, likewise
    *Stats = Local;
  }
  return TxUpdateStatus::Ok;
}

TxUpdateStatus
IDTables::txUpdateRetire(const std::vector<TaryRange> &TaryRetire,
                         const std::vector<uint32_t> &BarySites,
                         const std::function<void()> &BetweenTablesHook,
                         TxUpdateStats *Stats) {
  std::lock_guard<std::mutex> Guard(UpdateLock);

  schedYield(SchedOp::RMWRelaxed, SchedObject::UpdateCount, 0);
  uint64_t Upd = Updates.fetch_add(1, std::memory_order_relaxed);
  schedObserve(SchedOp::RMWRelaxed, SchedObject::UpdateCount, 0, Upd + 1);

  TxUpdateStats Local;
  Local.Incremental = true; // no version bump, O(delta) stores
  schedYield(SchedOp::LoadRelaxed, SchedObject::Version, 0);
  Local.Version = Version.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::Version, 0, Local.Version);

  schedYield(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0);
  uint64_t Seq = UpdateSeq.fetch_add(1, std::memory_order_release);
  schedObserve(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0, Seq + 1);

  // Phase 1: zero the module's Bary sites. Sites first — the reverse of
  // the install order — so no still-installed site can observe its
  // targets vanishing: by the time a target is cleared, every site that
  // could legally reach it under the retired module's classes is gone.
  auto RetireBary = [&] {
    for (uint32_t I : BarySites) {
      assert(I < BaryEntries.size() && "retired site past capacity");
      schedYield(SchedOp::StoreRelaxed, SchedObject::Bary, I);
      BaryEntries[I].store(0, std::memory_order_relaxed);
      schedObserve(SchedOp::StoreRelaxed, SchedObject::Bary, I, 0);
      ++Local.BaryCleared;
    }
  };

  // Phase 2: zero the module's Tary ranges. The installed extents are
  // left untouched — the retired ranges become interior holes, and a
  // later shrinking full update still zeroes down from the old extents.
  auto RetireTary = [&] {
    for (const TaryRange &R : TaryRetire) {
      uint64_t Begin = R.BeginBytes / 4;
      uint64_t End = (R.EndBytes + 3) / 4;
      assert(End * 4 <= taryCapacityBytes() && "retired range past capacity");
      for (uint64_t I = Begin; I < End; ++I) {
        schedYield(SchedOp::StoreRelaxed, SchedObject::Tary, I);
        TaryEntries[I].store(0, std::memory_order_relaxed);
        schedObserve(SchedOp::StoreRelaxed, SchedObject::Tary, I, 0);
        ++Local.TaryCleared;
      }
    }
  };

  auto PhaseBarrierAndHook = [&] {
    schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (BetweenTablesHook) {
      BetweenTablesHook();
      schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
  };

  RetireBary();
  PhaseBarrierAndHook();
  RetireTary();
  schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
  std::atomic_thread_fence(std::memory_order_seq_cst);

  schedYield(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0);
  uint64_t EndSeq = UpdateSeq.fetch_add(1, std::memory_order_release);
  schedObserve(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0, EndSeq + 1);

  if (Stats) {
    Local.Micros = Stats->Micros;
    Local.BatchModules = Stats->BatchModules;
    *Stats = Local;
  }
  return TxUpdateStatus::Ok;
}

TxUpdateStatus IDTables::txUpdateIncremental(
    uint64_t TaryLimitBytes, const std::vector<TaryRange> &TaryDirty,
    const std::function<int64_t(uint64_t)> &GetTaryECN, uint32_t BaryCount,
    const std::vector<uint32_t> &BaryDirty,
    const std::function<int64_t(uint32_t)> &GetBaryECN,
    const std::function<void()> &BetweenTablesHook, TxUpdateStats *Stats) {
  std::lock_guard<std::mutex> Guard(UpdateLock);

  assert(TaryLimitBytes <= taryCapacityBytes() && "code past table capacity");
  assert(BaryCount <= BaryEntries.size() && "too many branch sites");
  // Grow-only: a delta install may never shrink either table — shrinks
  // retire entries and must go through the full, version-bumping path.
  schedYield(SchedOp::LoadRelaxed, SchedObject::InstalledTary, 0);
  uint64_t PrevTaryWords = InstalledTaryWords.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::InstalledTary, 0,
               PrevTaryWords);
  schedYield(SchedOp::LoadRelaxed, SchedObject::InstalledBary, 0);
  uint32_t PrevBaryCount = InstalledBaryCount.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::InstalledBary, 0,
               PrevBaryCount);
  assert((TaryLimitBytes + 3) / 4 >= PrevTaryWords &&
         "incremental update may not shrink the Tary table");
  assert(BaryCount >= PrevBaryCount &&
         "incremental update may not shrink the Bary table");

  // No version bump: every new entry is stamped with the version already
  // installed, so each individual atomic store is its own linearization
  // point — a reader sees the edge absent or present, never a torn
  // cross-version pair. This is what makes the O(delta) cost safe.
  schedYield(SchedOp::LoadRelaxed, SchedObject::Version, 0);
  uint32_t CurVersion = Version.load(std::memory_order_relaxed);
  schedObserve(SchedOp::LoadRelaxed, SchedObject::Version, 0, CurVersion);
  schedYield(SchedOp::RMWRelaxed, SchedObject::UpdateCount, 0);
  uint64_t Upd = Updates.fetch_add(1, std::memory_order_relaxed);
  schedObserve(SchedOp::RMWRelaxed, SchedObject::UpdateCount, 0, Upd + 1);

  TxUpdateStats Local;
  Local.Incremental = true;
  Local.Version = CurVersion;

  schedYield(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0);
  uint64_t Seq = UpdateSeq.fetch_add(1, std::memory_order_release);
  schedObserve(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0, Seq + 1);

  uint64_t Limit = (TaryLimitBytes + 3) / 4;

  // Phase 1: (re-)encode only the dirty Tary ranges. Re-encoding an
  // unchanged entry at the same version is idempotent, so ranges may be
  // coalesced generously by the caller.
  auto InstallTaryDelta = [&] {
    for (const TaryRange &R : TaryDirty) {
      uint64_t Begin = R.BeginBytes / 4;
      uint64_t End = (R.EndBytes + 3) / 4;
      assert(End <= Limit && "dirty range past the new Tary limit");
      for (uint64_t I = Begin; I < End; ++I) {
        int64_t ECN = GetTaryECN(I * 4);
        uint32_t ID = 0;
        if (ECN >= 0) {
          assert(ECN <= static_cast<int64_t>(MaxECN) && "ECN space exhausted");
          ID = encodeID(static_cast<uint32_t>(ECN), CurVersion);
        }
        // Eligibility cross-check: an already-installed entry may only
        // be rewritten with the value it already holds.
        schedYield(SchedOp::LoadRelaxed, SchedObject::Tary, I);
        uint32_t Old = TaryEntries[I].load(std::memory_order_relaxed);
        schedObserve(SchedOp::LoadRelaxed, SchedObject::Tary, I, Old);
        assert((I >= PrevTaryWords || Old == 0 || Old == ID) &&
               "incremental update would change an installed Tary entry");
        (void)Old;
        schedYield(SchedOp::StoreRelaxed, SchedObject::Tary, I);
        TaryEntries[I].store(ID, std::memory_order_relaxed);
        schedObserve(SchedOp::StoreRelaxed, SchedObject::Tary, I, ID);
        ++Local.TaryWritten;
      }
    }
    schedYield(SchedOp::StoreRelaxed, SchedObject::InstalledTary, 0);
    InstalledTaryWords.store(Limit, std::memory_order_relaxed);
    schedObserve(SchedOp::StoreRelaxed, SchedObject::InstalledTary, 0, Limit);
  };

  // Phase 2: install the new Bary sites. Only indexes >= the previous
  // count are eligible — an existing site's window between the GOT hook
  // and its bary store would otherwise spuriously halt guests.
  auto InstallBaryDelta = [&] {
    for (uint32_t I : BaryDirty) {
      assert(I < BaryCount && "dirty site past the new Bary count");
      assert(I >= PrevBaryCount &&
             "incremental update would rewrite an installed Bary site");
      int64_t ECN = GetBaryECN(I);
      uint32_t ID = 0;
      if (ECN >= 0) {
        assert(ECN <= static_cast<int64_t>(MaxECN) && "ECN space exhausted");
        ID = encodeID(static_cast<uint32_t>(ECN), CurVersion);
      }
      schedYield(SchedOp::StoreRelaxed, SchedObject::Bary, I);
      BaryEntries[I].store(ID, std::memory_order_relaxed);
      schedObserve(SchedOp::StoreRelaxed, SchedObject::Bary, I, ID);
      ++Local.BaryWritten;
    }
    schedYield(SchedOp::StoreRelaxed, SchedObject::InstalledBary, 0);
    InstalledBaryCount.store(BaryCount, std::memory_order_relaxed);
    schedObserve(SchedOp::StoreRelaxed, SchedObject::InstalledBary, 0,
                 BaryCount);
  };

  // Same barrier discipline as the full transaction: new targets become
  // visible before the hook runs and before any new site can read them.
  auto PhaseBarrierAndHook = [&] {
    schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (BetweenTablesHook) {
      BetweenTablesHook();
      schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
  };

#if MCFI_SCHED_HOOKS
  if (GSchedMutantReorderPhases) {
    // TEST-ONLY MUTANT: new sites become visible before their targets
    // exist. See txUpdate above.
    InstallBaryDelta();
    PhaseBarrierAndHook();
    InstallTaryDelta();
  } else
#endif
  {
    InstallTaryDelta();
    PhaseBarrierAndHook();
    InstallBaryDelta();
  }
  schedYield(SchedOp::FenceSeqCst, SchedObject::None, 0);
  std::atomic_thread_fence(std::memory_order_seq_cst);

  schedYield(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0);
  uint64_t EndSeq = UpdateSeq.fetch_add(1, std::memory_order_release);
  schedObserve(SchedOp::RMWRelease, SchedObject::UpdateSeq, 0, EndSeq + 1);

  if (Stats) {
    Local.Micros = Stats->Micros;
    Local.BatchModules = Stats->BatchModules; // caller-owned, likewise
    *Stats = Local;
  }
  return TxUpdateStatus::Ok;
}
