//===- tests/DynlinkTest.cpp - Dynamic linking tests ----------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the paper's headline capability: dynamically linking
/// separately instrumented libraries into a running, multithreaded
/// program, with the CFG policy updated through check/update
/// transactions. Covers the three dlopen steps, PLT/GOT behaviour,
/// cross-module control flow, and concurrency between executing threads
/// and the dynamic linker.
///
//===----------------------------------------------------------------------===//

#include "metrics/Harness.h"
#include "toolchain/Toolchain.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace mcfi;

namespace {

const char *PluginSource = R"(
long plugin_fn(long x) { return x * 10 + 1; }
long plugin_cb(long (*cb)(long), long v) { return cb(v) + 1000; }
/* dlsym hands out plugin_fn's address, so the plugin must mark it
   address-taken -- under MCFI only address-taken functions are legal
   indirect-call targets. */
long (*plugin_exports)(long) = plugin_fn;
)";

const char *HostSource = R"(
long plugin_fn(long x);
long plugin_cb(long (*cb)(long), long v);
long local_cb(long x) { return x + 5; }
int main() {
  long h = dlopen(0);
  if (h < 0) { print_str("dlopen failed\n"); return 1; }
  print_int(plugin_fn(4));                 /* via PLT */
  print_int(plugin_cb(local_cb, 7));       /* plugin calls back into main */
  long (*f)(long) = (long (*)(long))dlsym(h, "plugin_fn");
  if (f) print_int(f(9));                  /* via dlsym'd pointer */
  return 0;
}
)";

struct DynProgram {
  std::unique_ptr<Machine> M;
  std::unique_ptr<Linker> L;
  bool Ok = false;
  std::string Error;
};

DynProgram buildDynamic(const std::string &Host, const std::string &Plugin) {
  DynProgram D;
  CompileOptions HostCO;
  HostCO.ModuleName = "host";
  HostCO.EmitPlt = true;
  CompileResult HostCR = compileModule(Host, HostCO);
  if (!HostCR.Ok) {
    D.Error = HostCR.Errors.empty() ? "host compile" : HostCR.Errors.front();
    return D;
  }
  CompileOptions PlugCO;
  PlugCO.ModuleName = "plugin";
  CompileResult PlugCR = compileModule(Plugin, PlugCO);
  if (!PlugCR.Ok) {
    D.Error =
        PlugCR.Errors.empty() ? "plugin compile" : PlugCR.Errors.front();
    return D;
  }

  D.M = std::make_unique<Machine>();
  D.L = std::make_unique<Linker>(*D.M);
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(HostCR.Obj));
  if (!D.L->linkProgram(std::move(Objs), D.Error))
    return D;
  D.L->registerLibrary(std::move(PlugCR.Obj));
  D.Ok = true;
  return D;
}

TEST(Dynlink, DlopenPltAndDlsym) {
  DynProgram D = buildDynamic(HostSource, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  uint32_t VersionBefore = D.M->tables().currentVersion();

  RunResult R = runProgram(*D.M);
  EXPECT_EQ(R.Reason, StopReason::Exited) << R.Message;
  EXPECT_EQ(D.M->takeOutput(), "41\n1012\n91\n");
  // dlopen executed an update transaction: the CFG version advanced.
  EXPECT_GT(D.M->tables().currentVersion(), VersionBefore);
}

TEST(Dynlink, CallingImportBeforeDlopenFailsClosed) {
  const char *Eager = R"(
    long plugin_fn(long x);
    int main() {
      print_int(plugin_fn(4)); /* library not loaded: GOT is empty */
      return 0;
    }
  )";
  DynProgram D = buildDynamic(Eager, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  RunResult R = runProgram(*D.M);
  // The PLT check transaction reads an invalid target ID and halts.
  EXPECT_EQ(R.Reason, StopReason::CfiViolation) << R.Message;
}

TEST(Dynlink, HijackedGotEntryIsBlocked) {
  // Even though the GOT lives in writable data, corrupting it cannot
  // redirect the PLT jump to a non-IBT (the PLT jump is checked).
  const char *LoopingHost = R"(
    long plugin_fn(long x);
    int main() {
      if (dlopen(0) < 0) return 1;
      long acc = 0;
      long i;
      for (i = 0; i < 1000000; i = i + 1)
        acc = acc + plugin_fn(i);
      print_int(acc & 255);
      return 0;
    }
  )";
  DynProgram D = buildDynamic(LoopingHost, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;

  Thread T;
  ASSERT_TRUE(D.M->makeThread("_start", T));
  // Run until mid-loop (GOT already resolved), then corrupt it.
  RunResult Mid = D.M->run(T, 300'000);
  ASSERT_EQ(Mid.Reason, StopReason::OutOfFuel) << Mid.Message;
  uint64_t GotAddr = 0;
  for (const MappedModule &Mod : D.M->modules()) {
    auto It = Mod.Obj->DataSymbols.find("got$plugin_fn");
    if (It != Mod.Obj->DataSymbols.end())
      GotAddr = Mod.DataBase + It->second;
  }
  ASSERT_NE(GotAddr, 0u);
  ASSERT_TRUE(D.M->store(GotAddr, 8, D.M->findFunction("plugin_fn") + 2));
  RunResult R = D.M->run(T, ~0ull);
  EXPECT_EQ(R.Reason, StopReason::CfiViolation) << R.Message;
}

TEST(Dynlink, SecondDlopenExtendsPolicy) {
  const char *Host = R"(
    long plugin_fn(long x);
    long extra_fn(long x);
    int main() {
      if (dlopen(0) < 0) return 1;
      print_int(plugin_fn(1));
      if (dlopen(1) < 0) return 2;
      print_int(extra_fn(1));
      return 0;
    }
  )";
  const char *Extra = "long extra_fn(long x) { return x + 77; }";

  CompileOptions HostCO;
  HostCO.ModuleName = "host";
  HostCO.EmitPlt = true;
  CompileResult HostCR = compileModule(Host, HostCO);
  ASSERT_TRUE(HostCR.Ok) << HostCR.Errors.front();
  CompileResult Plug1 = compileModule(PluginSource, {.ModuleName = "p1"});
  ASSERT_TRUE(Plug1.Ok);
  CompileResult Plug2 = compileModule(Extra, {.ModuleName = "p2"});
  ASSERT_TRUE(Plug2.Ok);

  Machine M;
  Linker L(M);
  std::string Err;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(HostCR.Obj));
  ASSERT_TRUE(L.linkProgram(std::move(Objs), Err)) << Err;
  L.registerLibrary(std::move(Plug1.Obj));
  L.registerLibrary(std::move(Plug2.Obj));

  RunResult R = runProgram(M);
  EXPECT_EQ(R.Reason, StopReason::Exited) << R.Message;
  EXPECT_EQ(M.takeOutput(), "11\n78\n");
  // Two dlopens + the initial install = at least 3 update transactions.
  EXPECT_GE(M.tables().updateCount(), 3u);
}

TEST(Dynlink, ConcurrentThreadsDuringDlopen) {
  // The paper's central concurrency scenario: user threads execute
  // check transactions while another thread dynamically links a
  // library. The spinning thread's indirect calls must keep passing
  // (retrying across the update), never spuriously halting.
  const char *Host = R"(
    long plugin_fn(long x);
    long w0(long x) { return x + 1; }
    long w1(long x) { return x * 2; }
    long (*tab[2])(long);
    void spinner(void) {
      tab[0] = w0;
      tab[1] = w1;
      long acc = 0;
      long i = 0;
      while (1) {
        acc = acc + tab[i & 1](i);
        i = i + 1;
      }
    }
    int main() { return 0; }
  )";
  DynProgram D = buildDynamic(Host, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;

  // The spinner runs forever; drive it in fuel slices on another host
  // thread while this thread performs the dynamic link.
  Thread T;
  ASSERT_TRUE(D.M->makeThread("spinner", T));
  std::atomic<bool> Stop{false};
  std::atomic<bool> Violated{false};
  std::thread Guest([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      RunResult R = D.M->run(T, 500'000);
      if (R.Reason != StopReason::OutOfFuel) {
        Violated.store(R.Reason == StopReason::CfiViolation);
        break;
      }
    }
  });

  // Dynamically link the plugin while the guest thread runs, several
  // times the machinery: repeated full-policy reinstalls also exercise
  // version bumps racing the spinner's check transactions.
  int64_t Handle = D.L->dlopen(0);
  EXPECT_GE(Handle, 0) << D.L->lastError();
  for (int I = 0; I != 20 && !Violated.load(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

  Stop.store(true);
  Guest.join();
  EXPECT_FALSE(Violated.load())
      << "a check transaction failed during dynamic linking";
  // The newly linked code is callable.
  EXPECT_NE(D.M->findFunction("plugin_fn"), 0u);
}

//===----------------------------------------------------------------------===//
// Module unload (dlclose)
//===----------------------------------------------------------------------===//

TEST(Dynlink, DlcloseFailsClosedAndInvalidatesHandle) {
  // After dlclose the module's IDs are zeroed and its GOT-published
  // address is gone: a replayed PLT call must lose at the check, and a
  // stale handle must stop resolving symbols.
  const char *Host = R"(
    long plugin_fn(long x);
    int main() {
      long h = dlopen(0);
      if (h < 0) return 1;
      print_int(plugin_fn(4));                 /* works while loaded */
      if (dlclose(h) != 0) return 2;
      long (*f)(long) = (long (*)(long))dlsym(h, "plugin_fn");
      if (f) print_str("stale handle resolved\n");
      else print_str("gone\n");
      print_int(plugin_fn(5));                 /* must fail closed */
      return 0;
    }
  )";
  DynProgram D = buildDynamic(Host, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  RunResult R = runProgram(*D.M);
  EXPECT_EQ(R.Reason, StopReason::CfiViolation) << R.Message;
  EXPECT_EQ(D.M->takeOutput(), "41\ngone\n");
  ASSERT_EQ(D.L->unloadHistory().size(), 1u);
  EXPECT_EQ(D.L->unloadHistory()[0].Closed, 1u);
  // The unloaded function is invisible to symbol lookup.
  EXPECT_EQ(D.M->findFunction("plugin_fn"), 0u);
}

TEST(Dynlink, DlcloseRejectsBadHandles) {
  DynProgram D = buildDynamic(HostSource, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  // Static program modules (bootstrap + host) can never be closed.
  EXPECT_FALSE(D.L->dlcloseOne(0));
  EXPECT_FALSE(D.L->dlcloseOne(1));
  // Out-of-range and negative handles.
  EXPECT_FALSE(D.L->dlcloseOne(-1));
  EXPECT_FALSE(D.L->dlcloseOne(99));
  // Double close: the second must fail.
  int64_t H = D.L->dlopen(0);
  ASSERT_GE(H, 0) << D.L->lastError();
  EXPECT_TRUE(D.L->dlcloseOne(H));
  EXPECT_FALSE(D.L->dlcloseOne(H));
  // Duplicate handles within one batch: exactly one wins.
  int64_t H2 = D.L->dlopen(0);
  ASSERT_GE(H2, 0);
  std::vector<bool> Ok = D.L->dlcloseBatch({H2, H2});
  EXPECT_TRUE(Ok[0]);
  EXPECT_FALSE(Ok[1]);
}

TEST(Dynlink, DlcloseReclaimRestoresFootprint) {
  // The zero-leak property: open -> close -> drain returns the machine
  // to its pre-dlopen footprint (module count, code usage, no pending
  // regions, no condemned ECNs, empty free list after the tail-trim).
  DynProgram D = buildDynamic(HostSource, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  size_t Modules0 = D.M->modules().size();
  uint64_t CodeTop0 = D.M->codeTop();

  int64_t H = D.L->dlopen(0);
  ASSERT_GE(H, 0) << D.L->lastError();
  uint64_t PluginBase = D.M->modules()[static_cast<size_t>(H)].CodeBase;
  EXPECT_GT(D.M->codeTop(), CodeTop0);

  ASSERT_TRUE(D.L->dlcloseOne(H));
  // Retired, not yet reclaimed: the region waits out its grace period.
  EXPECT_TRUE(D.M->reclaimPending());
  EXPECT_EQ(D.M->reclaimStats().PendingRegions, 1u);

  // No guest threads are running, so the drain matures everything.
  D.M->drainReclaim();
  ReclaimStats RS = D.M->reclaimStats();
  EXPECT_EQ(RS.PendingRegions, 0u);
  EXPECT_EQ(RS.Reclaimed, 1u);
  EXPECT_EQ(RS.CondemnedECNs, 0u);
  // Tail-trim: the hole was at the top of the code region, so the
  // machine shrinks back instead of keeping a free-list entry.
  EXPECT_EQ(RS.FreeRanges, 0u);
  EXPECT_EQ(D.M->codeTop(), CodeTop0);
  EXPECT_EQ(D.M->modules().size(), Modules0);

  // Re-merge after unload is identical to never having loaded: a fresh
  // dlopen of the same library lands at the same base and flattens to
  // the same policy image as the first load did.
  int64_t H2 = D.L->dlopen(0);
  ASSERT_GE(H2, 0) << D.L->lastError();
  EXPECT_EQ(D.M->modules()[static_cast<size_t>(H2)].CodeBase, PluginBase);
}

TEST(Dynlink, ReopenAfterUnloadIsByteIdentical) {
  // Stronger determinism check: the shadow image after
  // open/close/drain/open equals the image after the first open.
  DynProgram D = buildDynamic(HostSource, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  int64_t H = D.L->dlopen(0);
  ASSERT_GE(H, 0);
  PolicyImage First = D.L->shadow().image(); // copy
  ASSERT_TRUE(D.L->dlcloseOne(H));
  D.M->drainReclaim();
  int64_t H2 = D.L->dlopen(0);
  ASSERT_GE(H2, 0);
  const PolicyImage &Second = D.L->shadow().image();
  EXPECT_EQ(First.TaryLimitBytes, Second.TaryLimitBytes);
  EXPECT_EQ(First.BaryCount, Second.BaryCount);
  EXPECT_TRUE(First.TaryECN == Second.TaryECN);
  EXPECT_TRUE(First.BaryECN == Second.BaryECN);
}

TEST(Dynlink, DlcloseBatchOneRetireTransaction) {
  // Closing N modules as one batch runs ONE retire transaction.
  DynProgram D = buildDynamic(HostSource, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;
  std::vector<DlopenResult> Opened = D.L->dlopenBatch({0, 0, 0});
  std::vector<int64_t> Handles;
  for (const DlopenResult &R : Opened) {
    ASSERT_GE(R.Handle, 0);
    Handles.push_back(R.Handle);
  }
  uint64_t Updates0 = D.M->tables().updateCount();
  std::vector<bool> Ok = D.L->dlcloseBatch(Handles);
  for (bool B : Ok)
    EXPECT_TRUE(B);
  ASSERT_FALSE(D.L->unloadHistory().empty());
  const DlcloseBatchStats &BS = D.L->unloadHistory().back();
  EXPECT_EQ(BS.Requested, 3u);
  EXPECT_EQ(BS.Closed, 3u);
  // One retire transaction, plus at most one reinstall when surviving
  // classes changed shape.
  uint64_t Delta = D.M->tables().updateCount() - Updates0;
  EXPECT_GE(Delta, 1u);
  EXPECT_LE(Delta, 2u);
}

TEST(Dynlink, ConcurrentCheckersDuringDlclose) {
  // The unload twin of ConcurrentThreadsDuringDlopen: a spinner whose
  // indirect calls target only its OWN module must never falter while
  // an unrelated plugin is unloaded out from under it.
  const char *Host = R"(
    long plugin_fn(long x);
    long w0(long x) { return x + 1; }
    long w1(long x) { return x * 2; }
    long (*tab[2])(long);
    void spinner(void) {
      tab[0] = w0;
      tab[1] = w1;
      long acc = 0;
      long i = 0;
      while (1) {
        acc = acc + tab[i & 1](i);
        i = i + 1;
      }
    }
    int main() { return 0; }
  )";
  DynProgram D = buildDynamic(Host, PluginSource);
  ASSERT_TRUE(D.Ok) << D.Error;

  Thread T;
  ASSERT_TRUE(D.M->makeThread("spinner", T));
  std::atomic<bool> Stop{false};
  std::atomic<bool> Violated{false};
  std::thread Guest([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      RunResult R = D.M->run(T, 200'000);
      if (R.Reason != StopReason::OutOfFuel) {
        Violated.store(R.Reason == StopReason::CfiViolation);
        break;
      }
    }
  });

  for (int Cycle = 0; Cycle != 10 && !Violated.load(); ++Cycle) {
    int64_t H = D.L->dlopen(0);
    ASSERT_GE(H, 0) << D.L->lastError();
    ASSERT_TRUE(D.L->dlcloseOne(H));
    D.M->drainReclaim(); // spinner never syscalls; grace stays open
  }

  Stop.store(true);
  Guest.join();
  EXPECT_FALSE(Violated.load())
      << "a survivor's check transaction failed during dlclose";
}

} // namespace
