//===- tools/mcfi-cc.cpp - The MCFI compiler driver ------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// mcfi-cc: compiles one MiniC translation unit into a separately
/// instrumented .mcfo module (the paper's modified-LLVM + rewriter step).
///
///   mcfi-cc [options] input.minic
///     -o <file>        output path (default: input basename + .mcfo)
///     --name <name>    module name recorded in the object
///     --no-instrument  emit the unprotected baseline
///     --no-tailcalls   disable tail-call optimization ("x86-32 mode")
///     --plt            synthesize instrumented PLT entries for imports
///     --optimize       scheduler-friendly instrumentation (shared masks,
///                      reordered ID loads; needs the semantic verifier)
///     --analyze        also run the C1/C2 analyzer and print a report
///
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "toolchain/Toolchain.h"
#include "tools/ToolCommon.h"

using namespace mcfi;
using namespace mcfi::tools;

int main(int argc, char **argv) {
  CompileOptions CO;
  std::string Input, Output;
  bool Analyze = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (Arg == "--name" && I + 1 < argc) {
      CO.ModuleName = argv[++I];
    } else if (Arg == "--no-instrument") {
      CO.Instrument = false;
    } else if (Arg == "--no-tailcalls") {
      CO.TailCalls = false;
    } else if (Arg == "--plt") {
      CO.EmitPlt = true;
    } else if (Arg == "--optimize") {
      CO.Optimize = true;
    } else if (Arg == "--analyze") {
      Analyze = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage("mcfi-cc: unknown option; see the file header for usage");
    } else if (Input.empty()) {
      Input = Arg;
    } else {
      usage("mcfi-cc: exactly one input file expected");
    }
  }
  if (Input.empty())
    usage("usage: mcfi-cc [options] input.minic");
  if (Output.empty()) {
    Output = Input;
    size_t Dot = Output.rfind('.');
    if (Dot != std::string::npos)
      Output.resize(Dot);
    Output += ".mcfo";
  }
  if (CO.ModuleName == "module") {
    CO.ModuleName = Input;
    size_t Slash = CO.ModuleName.rfind('/');
    if (Slash != std::string::npos)
      CO.ModuleName = CO.ModuleName.substr(Slash + 1);
  }

  std::string Source;
  if (!readFileText(Input, Source)) {
    std::fprintf(stderr, "mcfi-cc: cannot read %s\n", Input.c_str());
    return 1;
  }

  CompileResult CR = compileModule(Source, CO);
  if (!CR.Ok) {
    for (const std::string &E : CR.Errors)
      std::fprintf(stderr, "%s: %s\n", Input.c_str(), E.c_str());
    return 1;
  }

  if (Analyze) {
    AnalysisReport R = analyzeConditions(*CR.Prog);
    std::printf("C1: %u violation(s) before elimination; UC=%u DC=%u MF=%u "
                "SU=%u NF=%u; %u residual (K1=%u K2=%u)\n",
                R.VBE, R.UC, R.DC, R.MF, R.SU, R.NF, R.VAE, R.K1, R.K2);
    std::printf("C2: %u unannotated inline assembly block(s)\n", R.C2Count);
    for (const C1Violation &V : R.C1)
      if (V.Eliminated == FPRule::None)
        std::printf("  line %u: %s (%s)\n", V.Loc.Line,
                    V.Description.c_str(),
                    V.Residual == ResidualKind::K1 ? "K1: needs a fix"
                                                   : "K2: benign");
  }

  if (!writeFileBytes(Output, writeObject(CR.Obj))) {
    std::fprintf(stderr, "mcfi-cc: cannot write %s\n", Output.c_str());
    return 1;
  }
  std::printf("%s: %zu bytes code, %zu branch sites, %zu functions -> %s\n",
              CO.ModuleName.c_str(), CR.Obj.Code.size(),
              CR.Obj.Aux.BranchSites.size(), CR.Obj.Aux.Functions.size(),
              Output.c_str());
  return 0;
}
