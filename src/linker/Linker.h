//===- linker/Linker.h - MCFI static and dynamic linking --------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MCFI linker. Static linking loads a set of separately-compiled,
/// separately-instrumented modules, resolves relocations, generates the
/// combined CFG from their merged auxiliary info, verifies each module,
/// seals the code RX, and installs the ID tables with an update
/// transaction. Dynamic linking (dlopen) performs the paper's three
/// steps for a newly loaded library while other threads keep running:
///
///   (1) module preparation: map the library writable/not-executable and
///       apply its relocations;
///   (2) new CFG generation: regenerate the combined CFG, patch the
///       library's Bary indexes, verify it, and seal it RX;
///   (3) ID-table updates: one TxUpdate installs the new IDs, with the
///       GOT entry updates serialized between the Tary and Bary phases.
///
/// The linker also synthesizes the bootstrap module (the "_start" entry
/// that calls main and exits, and the sigreturn trampoline) through the
/// same assemble-instrument-verify pipeline as user code.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_LINKER_LINKER_H
#define MCFI_LINKER_LINKER_H

#include "cfg/CFGGen.h"
#include "runtime/Machine.h"
#include "tables/Shadow.h"

#include <condition_variable>
#include <deque>
#include <string>
#include <vector>

namespace mcfi {

struct LinkOptions {
  /// Run the verifier on every module before sealing. Always on for
  /// instrumented programs; the unprotected baseline cannot verify.
  bool Verify = true;
  /// Generate and install the CFG policy (off for the baseline, which
  /// has no check transactions).
  bool InstallPolicy = true;
  /// Instrument the synthesized bootstrap module (matches whether the
  /// program modules are instrumented).
  bool InstrumentBootstrap = true;
  /// Install pure-extension policies (typical dlopen of a self-contained
  /// library) with the O(delta) incremental transaction instead of the
  /// full O(code-region) rebuild. Off forces every install through the
  /// full path (the bench's comparison baseline).
  bool IncrementalUpdates = true;
  /// Optional intersection-only CFG refinement from the dataflow engine;
  /// applied to every policy this linker generates (static link and
  /// dlopen regenerations alike, so the refined policy stays consistent
  /// across loads). The caller keeps the object alive for the linker's
  /// lifetime. Null: plain type-matching CFG.
  const CFGRefinement *Refinement = nullptr;
  /// Worker threads for the parallel CFG-merge phases (passed through to
  /// generateCFG). 1 = serial; any value yields an identical policy.
  unsigned MergeWorkers = 1;
};

/// What one coalesced dlopen request resolves to. Returned by value so a
/// loader thread never has to re-read Machine state (the module list may
/// be growing under other loaders by the time it looks).
struct DlopenResult {
  int64_t Handle = -1;        ///< machine module index, or negative
  uint32_t SiteIndexBase = 0; ///< the module's global branch-site base
  uint64_t CodeBase = 0;      ///< the module's mapped code base
};

/// Per-batch accounting for coalesced dynamic loads: one entry per
/// processed batch, whether it installed or failed.
struct DlopenBatchStats {
  uint32_t Requested = 0;   ///< dlopen requests coalesced into the batch
  uint32_t Loaded = 0;      ///< modules that mapped + resolved
  bool Installed = false;   ///< the single policy install succeeded
  bool Incremental = false; ///< that install took the delta path
  double MergeMicros = 0;   ///< one combined-CFG regeneration
  double InstallMicros = 0; ///< the single TxUpdate transaction
};

/// Drives loading, relocation, CFG generation, verification, and table
/// installation against one Machine.
class Linker {
public:
  Linker(Machine &M, LinkOptions Opts = LinkOptions());

  /// Statically links \p Objects (plus the synthesized bootstrap) into
  /// the machine. On failure returns false and sets \p Error.
  bool linkProgram(std::vector<MCFIObject> Objects, std::string &Error);

  /// Registers a library for later dynamic loading; the guest refers to
  /// it by the returned id in dlopen(id).
  int registerLibrary(MCFIObject Obj);

  /// The paper's three-step dynamic linking. Returns the module handle
  /// (machine module index), or a negative value on failure. Installed
  /// as the machine's DlopenHook by linkProgram. Concurrent callers are
  /// coalesced (see dlopenOne).
  int64_t dlopen(int64_t RegistryId);

  /// Coalescing dlopen: requests that arrive while another thread is
  /// mid-install are queued, and the installing thread (the combiner
  /// leader) drains the queue as ONE batch — one CFG regeneration, one
  /// version bump, one Tary→GOT→Bary update transaction — before waking
  /// the waiters with their per-request results.
  DlopenResult dlopenOne(int64_t RegistryId);

  /// Explicitly loads \p RegistryIds as one batch (one combined install),
  /// bypassing the combiner queue. Results are index-parallel to the
  /// input. Used by benchmarks/tests that need exact batch shapes.
  std::vector<DlopenResult> dlopenBatch(const std::vector<int64_t> &RegistryIds);

  /// The policy currently installed (valid after linkProgram).
  const CFGPolicy &policy() const { return Policy; }

  /// Per-install accounting for every update transaction this linker
  /// ran, in order (the metrics layer aggregates these).
  const std::vector<TxUpdateStats> &updateHistory() const {
    return UpdateHistory;
  }

  /// Per-batch accounting for coalesced dynamic loads, in install order.
  const std::vector<DlopenBatchStats> &batchHistory() const {
    return BatchHistory;
  }

  /// The shadow of the installed policy (delta source; exposed for
  /// metrics and tests).
  const PolicyShadow &shadow() const { return Shadow; }

  const std::string &lastError() const { return LastError; }

private:
  /// One queued request in the dlopen combiner.
  struct PendingDlopen {
    int64_t Id = -1;
    DlopenResult Result;
    bool Done = false;
  };

  bool loadAndRelocate(MCFIObject Obj, std::string &Error);
  bool resolveModule(int Index, std::string &Error);
  void patchBaryIndexes(const CFGPolicy &Policy);
  void updateGotEntries();
  bool installPolicy(CFGPolicy &&NewPolicy, uint32_t BatchModules = 1);
  void processBatch(std::vector<PendingDlopen *> &Batch);
  MCFIObject makeBootstrap();

  Machine &M;
  LinkOptions Opts;
  CFGPolicy Policy;
  PolicyShadow Shadow;
  std::vector<TxUpdateStats> UpdateHistory;
  std::vector<DlopenBatchStats> BatchHistory;
  std::vector<MCFIObject> Registry;
  std::vector<bool> BaryPatched; ///< per machine module index
  std::string LastError;
  std::mutex DlopenLock; ///< serializes dynamic link operations

  /// Combiner state: loaders enqueue under BatchLock; the leader drains
  /// the queue in rounds while holding DlopenLock for the install work.
  std::mutex BatchLock;
  std::condition_variable BatchCv;
  std::deque<PendingDlopen *> BatchQueue;
  bool LeaderActive = false;
};

} // namespace mcfi

#endif // MCFI_LINKER_LINKER_H
