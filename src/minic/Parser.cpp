//===- minic/Parser.cpp - MiniC parser -------------------------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Parser.h"

#include "support/Assert.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace mcfi;
using namespace mcfi::minic;

namespace {

/// A parsed declarator: the declared name plus the full type after
/// applying pointer/array/function derivations to a base type.
struct Declarator {
  std::string Name;
  const Type *Ty = nullptr;
  /// If the declarator is a function declarator (e.g. "f(int a, int b)"),
  /// the parameter declarations in order.
  std::vector<std::pair<std::string, const Type *>> Params;
  bool IsFunction = false;
  bool Variadic = false;
  std::vector<SourceLoc> ParamLocs;
};

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, std::vector<std::string> &Errors)
      : Tokens(std::move(Tokens)), Errors(Errors),
        Prog(std::make_unique<Program>()) {}

  std::unique_ptr<Program> run() {
    while (!at(TokKind::Eof)) {
      if (!parseTopLevel())
        return nullptr;
    }
    return HadError ? nullptr : std::move(Prog);
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  bool at(TokKind K) const { return peek().Kind == K; }

  Token advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool consumeIf(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }

  bool expect(TokKind K, const char *What) {
    if (consumeIf(K))
      return true;
    error(formatString("expected %s", What));
    return false;
  }

  void error(const std::string &Msg) {
    HadError = true;
    Errors.push_back(
        formatString("line %u: %s", peek().Loc.Line, Msg.c_str()));
  }

  SourceLoc loc() const { return peek().Loc; }

  //===--------------------------------------------------------------------===//
  // Types and declarators
  //===--------------------------------------------------------------------===//

  bool atTypeStart() const {
    switch (peek().Kind) {
    case TokKind::KwVoid:
    case TokKind::KwChar:
    case TokKind::KwShort:
    case TokKind::KwInt:
    case TokKind::KwLong:
    case TokKind::KwUnsigned:
    case TokKind::KwFloat:
    case TokKind::KwDouble:
    case TokKind::KwStruct:
    case TokKind::KwUnion:
    case TokKind::KwEnum:
    case TokKind::KwConst:
      return true;
    case TokKind::Ident:
      return Typedefs.count(peek().Text) != 0;
    default:
      return false;
    }
  }

  /// Parses a declaration specifier (the base type).
  const Type *parseDeclSpec() {
    TypeContext &Ctx = Prog->getTypes();
    consumeIf(TokKind::KwConst); // const is accepted and ignored
    bool Unsigned = consumeIf(TokKind::KwUnsigned);
    switch (peek().Kind) {
    case TokKind::KwVoid:
      advance();
      return Ctx.getVoid();
    case TokKind::KwChar:
      advance();
      return Ctx.getInt(8, !Unsigned);
    case TokKind::KwShort:
      advance();
      return Ctx.getInt(16, !Unsigned);
    case TokKind::KwInt:
      advance();
      return Ctx.getInt(32, !Unsigned);
    case TokKind::KwLong:
      advance();
      consumeIf(TokKind::KwLong); // accept "long long"
      return Ctx.getInt(64, !Unsigned);
    case TokKind::KwFloat:
      advance();
      return Ctx.getFloat(32);
    case TokKind::KwDouble:
      advance();
      return Ctx.getFloat(64);
    case TokKind::KwStruct:
    case TokKind::KwUnion: {
      bool IsUnion = peek().Kind == TokKind::KwUnion;
      advance();
      if (!at(TokKind::Ident)) {
        error("expected record tag");
        return nullptr;
      }
      std::string Tag = advance().Text;
      RecordType *R = Ctx.getRecord(Tag, IsUnion);
      if (at(TokKind::LBrace)) {
        if (!parseRecordBody(R))
          return nullptr;
      }
      return R;
    }
    case TokKind::KwEnum: {
      advance();
      if (at(TokKind::Ident))
        advance(); // tag ignored: enums are int
      if (at(TokKind::LBrace)) {
        advance();
        int64_t Next = 0;
        while (!at(TokKind::RBrace)) {
          if (!at(TokKind::Ident)) {
            error("expected enumerator name");
            return nullptr;
          }
          std::string Name = advance().Text;
          if (consumeIf(TokKind::Assign)) {
            bool Negative = consumeIf(TokKind::Minus);
            if (!at(TokKind::IntLit)) {
              error("expected enumerator value");
              return nullptr;
            }
            Next = advance().IntValue * (Negative ? -1 : 1);
          }
          EnumConstants[Name] = Next++;
          if (!consumeIf(TokKind::Comma))
            break;
        }
        if (!expect(TokKind::RBrace, "'}' after enumerators"))
          return nullptr;
      }
      return Ctx.getInt32();
    }
    case TokKind::Ident: {
      auto It = Typedefs.find(peek().Text);
      if (It != Typedefs.end()) {
        advance();
        return It->second;
      }
      error("unknown type name '" + peek().Text + "'");
      return nullptr;
    }
    default:
      if (Unsigned)
        return Ctx.getInt(32, false);
      error("expected type");
      return nullptr;
    }
  }

  bool parseRecordBody(RecordType *R) {
    advance(); // '{'
    if (R->isComplete()) {
      error("redefinition of record '" + R->getTag() + "'");
      return false;
    }
    std::vector<RecordField> Fields;
    while (!at(TokKind::RBrace)) {
      const Type *Base = parseDeclSpec();
      if (!Base)
        return false;
      for (;;) {
        Declarator D;
        if (!parseDeclarator(Base, D, /*RequireName=*/true))
          return false;
        if (D.IsFunction) {
          error("record field cannot have bare function type");
          return false;
        }
        Fields.push_back({D.Name, D.Ty});
        if (!consumeIf(TokKind::Comma))
          break;
      }
      if (!expect(TokKind::Semi, "';' after field"))
        return false;
    }
    advance(); // '}'
    R->setFields(std::move(Fields));
    return true;
  }

  /// Parses a parameter list after '(' up to and including ')'.
  bool parseParamList(Declarator &D) {
    TypeContext &Ctx = Prog->getTypes();
    if (consumeIf(TokKind::RParen))
      return true;
    if (at(TokKind::KwVoid) && peek(1).Kind == TokKind::RParen) {
      advance();
      advance();
      return true;
    }
    for (;;) {
      if (consumeIf(TokKind::Ellipsis)) {
        D.Variadic = true;
        break;
      }
      const Type *Base = parseDeclSpec();
      if (!Base)
        return false;
      Declarator P;
      if (!parseDeclarator(Base, P, /*RequireName=*/false))
        return false;
      // Arrays decay to pointers in parameter position.
      if (const auto *AT = dyn_cast<ArrayType>(P.Ty))
        P.Ty = Ctx.getPointer(AT->getElement());
      D.ParamLocs.push_back(loc());
      D.Params.emplace_back(P.Name, P.Ty);
      if (!consumeIf(TokKind::Comma))
        break;
    }
    return expect(TokKind::RParen, "')' after parameters");
  }

  /// Parses a declarator over \p Base:
  ///   '*'* ( IDENT | '(' '*' IDENT? ('[' N ']')? ')' '(' params ')' )
  ///   ('[' N ']' | '(' params ')')?
  bool parseDeclarator(const Type *Base, Declarator &D, bool RequireName) {
    TypeContext &Ctx = Prog->getTypes();
    const Type *T = Base;
    while (consumeIf(TokKind::Star)) {
      consumeIf(TokKind::KwConst);
      T = Ctx.getPointer(T);
    }

    // Function-pointer declarator: (*name)(params), (*name[N])(params),
    // or with extra indirection levels, (**name)(params) etc.
    if (at(TokKind::LParen) && peek(1).Kind == TokKind::Star) {
      advance(); // '('
      advance(); // '*'
      unsigned ExtraStars = 0;
      while (consumeIf(TokKind::Star))
        ++ExtraStars;
      if (at(TokKind::Ident))
        D.Name = advance().Text;
      else if (RequireName) {
        error("expected name in function-pointer declarator");
        return false;
      }
      uint64_t ArrayCount = 0;
      bool IsArray = false;
      if (consumeIf(TokKind::LBracket)) {
        if (!at(TokKind::IntLit)) {
          error("expected array bound");
          return false;
        }
        ArrayCount = static_cast<uint64_t>(advance().IntValue);
        IsArray = true;
        if (!expect(TokKind::RBracket, "']'"))
          return false;
      }
      if (!expect(TokKind::RParen, "')' in function-pointer declarator") ||
          !expect(TokKind::LParen, "'(' starting parameter list"))
        return false;
      Declarator Inner;
      if (!parseParamList(Inner))
        return false;
      std::vector<const Type *> ParamTys;
      for (auto &[Name, Ty] : Inner.Params)
        ParamTys.push_back(Ty);
      const Type *FnPtr = Ctx.getPointer(
          Ctx.getFunction(T, std::move(ParamTys), Inner.Variadic));
      for (unsigned S = 0; S != ExtraStars; ++S)
        FnPtr = Ctx.getPointer(FnPtr);
      D.Ty = IsArray ? static_cast<const Type *>(Ctx.getArray(FnPtr, ArrayCount))
                     : FnPtr;
      return true;
    }

    if (at(TokKind::Ident))
      D.Name = advance().Text;
    else if (RequireName) {
      error("expected declarator name");
      return false;
    }

    if (consumeIf(TokKind::LBracket)) {
      if (!at(TokKind::IntLit)) {
        error("expected array bound");
        return false;
      }
      uint64_t N = static_cast<uint64_t>(advance().IntValue);
      if (!expect(TokKind::RBracket, "']'"))
        return false;
      D.Ty = Ctx.getArray(T, N);
      return true;
    }

    if (at(TokKind::LParen)) {
      advance();
      if (!parseParamList(D))
        return false;
      D.IsFunction = true;
      std::vector<const Type *> ParamTys;
      for (auto &[Name, Ty] : D.Params)
        ParamTys.push_back(Ty);
      D.Ty = Ctx.getFunction(T, std::move(ParamTys), D.Variadic);
      return true;
    }

    D.Ty = T;
    return true;
  }

  /// Parses a type-name (declaration specifier + abstract declarator),
  /// as used in casts and sizeof.
  const Type *parseTypeName() {
    const Type *Base = parseDeclSpec();
    if (!Base)
      return nullptr;
    Declarator D;
    if (!parseDeclarator(Base, D, /*RequireName=*/false))
      return nullptr;
    if (!D.Name.empty())
      error("unexpected name in type-name");
    if (D.IsFunction)
      return Prog->getTypes().getPointer(D.Ty); // fn type-name decays
    return D.Ty;
  }

  //===--------------------------------------------------------------------===//
  // Top level
  //===--------------------------------------------------------------------===//

  bool parseTopLevel() {
    if (consumeIf(TokKind::KwTypedef)) {
      const Type *Base = parseDeclSpec();
      if (!Base)
        return false;
      Declarator D;
      if (!parseDeclarator(Base, D, /*RequireName=*/true))
        return false;
      const Type *T = D.Ty;
      if (D.IsFunction)
        T = Prog->getTypes().getPointer(D.Ty);
      Typedefs[D.Name] = T;
      return expect(TokKind::Semi, "';' after typedef");
    }

    consumeIf(TokKind::KwStatic); // accepted and ignored

    const Type *Base = parseDeclSpec();
    if (!Base)
      return false;

    // Bare record/enum declaration: "struct S { ... };"
    if (consumeIf(TokKind::Semi))
      return true;

    Declarator D;
    if (!parseDeclarator(Base, D, /*RequireName=*/true))
      return false;

    if (D.IsFunction) {
      FuncDecl *Existing = Prog->findFunction(D.Name);
      std::vector<VarDecl *> Params;
      for (auto &[Name, Ty] : D.Params)
        Params.push_back(Prog->makeVar(loc(), Name, Ty, /*Global=*/false));
      FuncDecl *F;
      if (Existing) {
        if (Existing->getType() != D.Ty) {
          error("conflicting declaration of '" + D.Name + "'");
          return false;
        }
        F = Existing;
      } else {
        F = Prog->makeFunc(loc(), D.Name, cast<FunctionType>(D.Ty),
                           std::move(Params));
        Prog->Functions.push_back(F);
      }
      if (at(TokKind::LBrace)) {
        if (F->isDefined()) {
          error("redefinition of function '" + D.Name + "'");
          return false;
        }
        if (Existing) {
          // Rebind parameter declarations from the defining declaration.
          std::vector<VarDecl *> DefParams;
          for (auto &[Name, Ty] : D.Params)
            DefParams.push_back(
                Prog->makeVar(loc(), Name, Ty, /*Global=*/false));
          F = Prog->makeFunc(F->getLoc(), D.Name, F->getType(),
                             std::move(DefParams));
          // Replace the prototype in place so lookups see the definition.
          for (FuncDecl *&Slot : Prog->Functions)
            if (Slot == Existing)
              Slot = F;
        }
        BlockStmt *Body = parseBlock();
        if (!Body)
          return false;
        F->setBody(Body);
        return true;
      }
      return expect(TokKind::Semi, "';' after function declaration");
    }

    // Global variable(s).
    for (;;) {
      VarDecl *V = Prog->makeVar(loc(), D.Name, D.Ty, /*Global=*/true);
      if (consumeIf(TokKind::Assign)) {
        Expr *Init = parseAssignment();
        if (!Init)
          return false;
        V->setInit(Init);
      }
      Prog->Globals.push_back(V);
      if (!consumeIf(TokKind::Comma))
        break;
      D = Declarator();
      if (!parseDeclarator(Base, D, /*RequireName=*/true))
        return false;
    }
    return expect(TokKind::Semi, "';' after declaration");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  BlockStmt *parseBlock() {
    SourceLoc L = loc();
    if (!expect(TokKind::LBrace, "'{'"))
      return nullptr;
    std::vector<Stmt *> Stmts;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      Stmt *S = parseStmt();
      if (!S)
        return nullptr;
      Stmts.push_back(S);
    }
    if (!expect(TokKind::RBrace, "'}'"))
      return nullptr;
    return Prog->makeStmt<BlockStmt>(L, std::move(Stmts));
  }

  Stmt *parseStmt() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwIf: {
      advance();
      if (!expect(TokKind::LParen, "'(' after if"))
        return nullptr;
      Expr *Cond = parseExpr();
      if (!Cond || !expect(TokKind::RParen, "')'"))
        return nullptr;
      Stmt *Then = parseStmt();
      if (!Then)
        return nullptr;
      Stmt *Else = nullptr;
      if (consumeIf(TokKind::KwElse)) {
        Else = parseStmt();
        if (!Else)
          return nullptr;
      }
      return Prog->makeStmt<IfStmt>(L, Cond, Then, Else);
    }
    case TokKind::KwWhile: {
      advance();
      if (!expect(TokKind::LParen, "'(' after while"))
        return nullptr;
      Expr *Cond = parseExpr();
      if (!Cond || !expect(TokKind::RParen, "')'"))
        return nullptr;
      Stmt *Body = parseStmt();
      if (!Body)
        return nullptr;
      return Prog->makeStmt<WhileStmt>(L, Cond, Body, /*IsDoWhile=*/false);
    }
    case TokKind::KwDo: {
      advance();
      Stmt *Body = parseStmt();
      if (!Body)
        return nullptr;
      if (!expect(TokKind::KwWhile, "'while' after do body") ||
          !expect(TokKind::LParen, "'('"))
        return nullptr;
      Expr *Cond = parseExpr();
      if (!Cond || !expect(TokKind::RParen, "')'") ||
          !expect(TokKind::Semi, "';'"))
        return nullptr;
      return Prog->makeStmt<WhileStmt>(L, Cond, Body, /*IsDoWhile=*/true);
    }
    case TokKind::KwFor: {
      advance();
      if (!expect(TokKind::LParen, "'(' after for"))
        return nullptr;
      Stmt *Init = nullptr;
      if (!consumeIf(TokKind::Semi)) {
        if (atTypeStart()) {
          Init = parseLocalDecl();
        } else {
          Expr *E = parseExpr();
          if (!E || !expect(TokKind::Semi, "';'"))
            return nullptr;
          Init = Prog->makeStmt<ExprStmt>(L, E);
        }
        if (!Init)
          return nullptr;
      }
      Expr *Cond = nullptr;
      if (!at(TokKind::Semi)) {
        Cond = parseExpr();
        if (!Cond)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      Expr *Inc = nullptr;
      if (!at(TokKind::RParen)) {
        Inc = parseExpr();
        if (!Inc)
          return nullptr;
      }
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      Stmt *Body = parseStmt();
      if (!Body)
        return nullptr;
      return Prog->makeStmt<ForStmt>(L, Init, Cond, Inc, Body);
    }
    case TokKind::KwReturn: {
      advance();
      Expr *Value = nullptr;
      if (!at(TokKind::Semi)) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "';' after return"))
        return nullptr;
      return Prog->makeStmt<ReturnStmt>(L, Value);
    }
    case TokKind::KwBreak:
      advance();
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return Prog->makeStmt<BreakStmt>(L);
    case TokKind::KwContinue:
      advance();
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return Prog->makeStmt<ContinueStmt>(L);
    case TokKind::KwGoto: {
      advance();
      if (!at(TokKind::Ident)) {
        error("expected label after goto");
        return nullptr;
      }
      std::string Label = advance().Text;
      if (!expect(TokKind::Semi, "';'"))
        return nullptr;
      return Prog->makeStmt<GotoStmt>(L, std::move(Label));
    }
    case TokKind::KwSwitch:
      return parseSwitch();
    case TokKind::KwAsm:
      return parseAsm();
    case TokKind::Semi:
      advance();
      return Prog->makeStmt<BlockStmt>(L, std::vector<Stmt *>());
    default:
      break;
    }

    // Label: IDENT ':' (when not a typedef name).
    if (at(TokKind::Ident) && peek(1).Kind == TokKind::Colon &&
        !Typedefs.count(peek().Text)) {
      std::string Name = advance().Text;
      advance(); // ':'
      return Prog->makeStmt<LabelStmt>(L, std::move(Name));
    }

    if (atTypeStart())
      return parseLocalDecl();

    Expr *E = parseExpr();
    if (!E || !expect(TokKind::Semi, "';' after expression"))
      return nullptr;
    return Prog->makeStmt<ExprStmt>(L, E);
  }

  /// Local declaration: one declarator (MiniC allows one per statement),
  /// with optional initializer.
  Stmt *parseLocalDecl() {
    SourceLoc L = loc();
    const Type *Base = parseDeclSpec();
    if (!Base)
      return nullptr;
    Declarator D;
    if (!parseDeclarator(Base, D, /*RequireName=*/true))
      return nullptr;
    if (D.IsFunction) {
      error("local function declarations are not supported");
      return nullptr;
    }
    VarDecl *V = Prog->makeVar(L, D.Name, D.Ty, /*Global=*/false);
    if (consumeIf(TokKind::Assign)) {
      Expr *Init = parseAssignment();
      if (!Init)
        return nullptr;
      V->setInit(Init);
    }
    if (!expect(TokKind::Semi, "';' after declaration"))
      return nullptr;
    return Prog->makeStmt<DeclStmt>(L, V);
  }

  Stmt *parseSwitch() {
    SourceLoc L = loc();
    advance(); // switch
    if (!expect(TokKind::LParen, "'(' after switch"))
      return nullptr;
    Expr *Cond = parseExpr();
    if (!Cond || !expect(TokKind::RParen, "')'") ||
        !expect(TokKind::LBrace, "'{' starting switch body"))
      return nullptr;

    std::vector<SwitchArm> Arms;
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      SwitchArm Arm;
      if (consumeIf(TokKind::KwCase)) {
        bool Negative = consumeIf(TokKind::Minus);
        int64_t V;
        if (at(TokKind::IntLit) || at(TokKind::CharLit)) {
          V = advance().IntValue;
        } else if (at(TokKind::Ident) && EnumConstants.count(peek().Text)) {
          V = EnumConstants[advance().Text];
        } else {
          error("expected constant after case");
          return nullptr;
        }
        Arm.Value = Negative ? -V : V;
      } else if (consumeIf(TokKind::KwDefault)) {
        Arm.Value = std::nullopt;
      } else {
        error("expected case or default in switch body");
        return nullptr;
      }
      if (!expect(TokKind::Colon, "':'"))
        return nullptr;
      while (!at(TokKind::KwCase) && !at(TokKind::KwDefault) &&
             !at(TokKind::RBrace) && !at(TokKind::Eof)) {
        Stmt *S = parseStmt();
        if (!S)
          return nullptr;
        Arm.Stmts.push_back(S);
      }
      Arms.push_back(std::move(Arm));
    }
    if (!expect(TokKind::RBrace, "'}' closing switch"))
      return nullptr;
    return Prog->makeStmt<SwitchStmt>(L, Cond, std::move(Arms));
  }

  /// __asm__("text") or __asm__("text" : name = "type", ...) ';'
  Stmt *parseAsm() {
    SourceLoc L = loc();
    advance(); // __asm__
    if (!expect(TokKind::LParen, "'(' after __asm__"))
      return nullptr;
    if (!at(TokKind::StrLit)) {
      error("expected assembly string");
      return nullptr;
    }
    std::string Text = advance().Text;
    std::vector<AsmAnnotation> Annotations;
    if (consumeIf(TokKind::Colon)) {
      for (;;) {
        if (!at(TokKind::Ident)) {
          error("expected annotated symbol name");
          return nullptr;
        }
        AsmAnnotation A;
        A.Symbol = advance().Text;
        if (!expect(TokKind::Assign, "'=' in asm annotation"))
          return nullptr;
        if (!at(TokKind::StrLit)) {
          error("expected type string in asm annotation");
          return nullptr;
        }
        A.TypeText = advance().Text;
        Annotations.push_back(std::move(A));
        if (!consumeIf(TokKind::Comma))
          break;
      }
    }
    if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Semi, "';'"))
      return nullptr;
    return Prog->makeStmt<AsmStmt>(L, std::move(Text), std::move(Annotations));
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Expr *parseExpr() { return parseAssignment(); }

  Expr *parseAssignment() {
    Expr *LHS = parseConditional();
    if (!LHS)
      return nullptr;
    SourceLoc L = loc();
    BinaryOp CompoundOp = BinaryOp::Add;
    bool Compound = true;
    switch (peek().Kind) {
    case TokKind::Assign:
      Compound = false;
      break;
    case TokKind::PlusAssign:
      CompoundOp = BinaryOp::Add;
      break;
    case TokKind::MinusAssign:
      CompoundOp = BinaryOp::Sub;
      break;
    case TokKind::StarAssign:
      CompoundOp = BinaryOp::Mul;
      break;
    case TokKind::SlashAssign:
      CompoundOp = BinaryOp::Div;
      break;
    default:
      return LHS;
    }
    advance();
    Expr *RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    if (Compound)
      RHS = Prog->makeExpr<BinaryExpr>(L, CompoundOp, LHS, RHS);
    return Prog->makeExpr<AssignExpr>(L, LHS, RHS);
  }

  Expr *parseConditional() {
    Expr *Cond = parseBinary(0);
    if (!Cond)
      return nullptr;
    if (!consumeIf(TokKind::Question))
      return Cond;
    SourceLoc L = loc();
    Expr *Then = parseExpr();
    if (!Then || !expect(TokKind::Colon, "':' in conditional"))
      return nullptr;
    Expr *Else = parseConditional();
    if (!Else)
      return nullptr;
    return Prog->makeExpr<CondExpr>(L, Cond, Then, Else);
  }

  /// Precedence-climbing over binary operators.
  static int binPrec(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return 1;
    case TokKind::AmpAmp:
      return 2;
    case TokKind::Pipe:
      return 3;
    case TokKind::Caret:
      return 4;
    case TokKind::Amp:
      return 5;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 6;
    case TokKind::Lt:
    case TokKind::Gt:
    case TokKind::Le:
    case TokKind::Ge:
      return 7;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    default:
      return -1;
    }
  }

  static BinaryOp binOp(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return BinaryOp::LogicalOr;
    case TokKind::AmpAmp:
      return BinaryOp::LogicalAnd;
    case TokKind::Pipe:
      return BinaryOp::Or;
    case TokKind::Caret:
      return BinaryOp::Xor;
    case TokKind::Amp:
      return BinaryOp::And;
    case TokKind::EqEq:
      return BinaryOp::Eq;
    case TokKind::NotEq:
      return BinaryOp::Ne;
    case TokKind::Lt:
      return BinaryOp::Lt;
    case TokKind::Gt:
      return BinaryOp::Gt;
    case TokKind::Le:
      return BinaryOp::Le;
    case TokKind::Ge:
      return BinaryOp::Ge;
    case TokKind::Shl:
      return BinaryOp::Shl;
    case TokKind::Shr:
      return BinaryOp::Shr;
    case TokKind::Plus:
      return BinaryOp::Add;
    case TokKind::Minus:
      return BinaryOp::Sub;
    case TokKind::Star:
      return BinaryOp::Mul;
    case TokKind::Slash:
      return BinaryOp::Div;
    case TokKind::Percent:
      return BinaryOp::Mod;
    default:
      mcfi_unreachable("not a binary operator");
    }
  }

  Expr *parseBinary(int MinPrec) {
    Expr *LHS = parseUnary();
    if (!LHS)
      return nullptr;
    for (;;) {
      int Prec = binPrec(peek().Kind);
      if (Prec < 0 || Prec < MinPrec)
        return LHS;
      SourceLoc L = loc();
      BinaryOp Op = binOp(advance().Kind);
      Expr *RHS = parseBinary(Prec + 1);
      if (!RHS)
        return nullptr;
      LHS = Prog->makeExpr<BinaryExpr>(L, Op, LHS, RHS);
    }
  }

  Expr *parseUnary() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case TokKind::Minus:
      advance();
      return wrapUnary(L, UnaryOp::Neg);
    case TokKind::Bang:
      advance();
      return wrapUnary(L, UnaryOp::LogicalNot);
    case TokKind::Tilde:
      advance();
      return wrapUnary(L, UnaryOp::BitNot);
    case TokKind::Star:
      advance();
      return wrapUnary(L, UnaryOp::Deref);
    case TokKind::Amp:
      advance();
      return wrapUnary(L, UnaryOp::AddrOf);
    case TokKind::PlusPlus:
    case TokKind::MinusMinus: {
      // Pre-increment/decrement desugars to an assignment.
      BinaryOp Op =
          peek().Kind == TokKind::PlusPlus ? BinaryOp::Add : BinaryOp::Sub;
      advance();
      Expr *Sub = parseUnary();
      if (!Sub)
        return nullptr;
      Expr *One = Prog->makeExpr<IntLitExpr>(L, 1);
      Expr *Sum = Prog->makeExpr<BinaryExpr>(L, Op, Sub, One);
      return Prog->makeExpr<AssignExpr>(L, Sub, Sum);
    }
    case TokKind::KwSizeof: {
      advance();
      if (!expect(TokKind::LParen, "'(' after sizeof"))
        return nullptr;
      const Type *T = parseTypeName();
      if (!T || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return Prog->makeExpr<SizeofExpr>(L, T);
    }
    case TokKind::LParen:
      // Cast or parenthesized expression.
      if (isTypeStartAt(1)) {
        advance();
        const Type *T = parseTypeName();
        if (!T || !expect(TokKind::RParen, "')' after cast type"))
          return nullptr;
        Expr *Sub = parseUnary();
        if (!Sub)
          return nullptr;
        return Prog->makeExpr<CastExpr>(L, T, Sub, /*Implicit=*/false);
      }
      break;
    default:
      break;
    }
    return parsePostfix();
  }

  bool isTypeStartAt(size_t Ahead) const {
    switch (peek(Ahead).Kind) {
    case TokKind::KwVoid:
    case TokKind::KwChar:
    case TokKind::KwShort:
    case TokKind::KwInt:
    case TokKind::KwLong:
    case TokKind::KwUnsigned:
    case TokKind::KwFloat:
    case TokKind::KwDouble:
    case TokKind::KwStruct:
    case TokKind::KwUnion:
    case TokKind::KwEnum:
    case TokKind::KwConst:
      return true;
    case TokKind::Ident:
      return Typedefs.count(peek(Ahead).Text) != 0;
    default:
      return false;
    }
  }

  Expr *wrapUnary(SourceLoc L, UnaryOp Op) {
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return Prog->makeExpr<UnaryExpr>(L, Op, Sub);
  }

  Expr *parsePostfix() {
    Expr *E = parsePrimary();
    if (!E)
      return nullptr;
    for (;;) {
      SourceLoc L = loc();
      if (consumeIf(TokKind::LParen)) {
        std::vector<Expr *> Args;
        if (!at(TokKind::RParen)) {
          for (;;) {
            Expr *Arg = parseAssignment();
            if (!Arg)
              return nullptr;
            Args.push_back(Arg);
            if (!consumeIf(TokKind::Comma))
              break;
          }
        }
        if (!expect(TokKind::RParen, "')' after arguments"))
          return nullptr;
        E = Prog->makeExpr<CallExpr>(L, E, std::move(Args));
        continue;
      }
      if (consumeIf(TokKind::LBracket)) {
        Expr *Idx = parseExpr();
        if (!Idx || !expect(TokKind::RBracket, "']'"))
          return nullptr;
        E = Prog->makeExpr<IndexExpr>(L, E, Idx);
        continue;
      }
      if (at(TokKind::Dot) || at(TokKind::Arrow)) {
        bool Arrow = at(TokKind::Arrow);
        advance();
        if (!at(TokKind::Ident)) {
          error("expected field name");
          return nullptr;
        }
        std::string Field = advance().Text;
        E = Prog->makeExpr<MemberExpr>(L, E, std::move(Field), Arrow);
        continue;
      }
      if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
        // Post-increment desugars to assignment; MiniC restricts its use
        // to statement contexts where the value is unused.
        BinaryOp Op =
            peek().Kind == TokKind::PlusPlus ? BinaryOp::Add : BinaryOp::Sub;
        advance();
        Expr *One = Prog->makeExpr<IntLitExpr>(L, 1);
        Expr *Sum = Prog->makeExpr<BinaryExpr>(L, Op, E, One);
        E = Prog->makeExpr<AssignExpr>(L, E, Sum);
        continue;
      }
      return E;
    }
  }

  Expr *parsePrimary() {
    SourceLoc L = loc();
    switch (peek().Kind) {
    case TokKind::IntLit:
    case TokKind::CharLit:
      return Prog->makeExpr<IntLitExpr>(L, advance().IntValue);
    case TokKind::KwNull:
      advance();
      return Prog->makeExpr<IntLitExpr>(L, 0, /*IsNull=*/true);
    case TokKind::StrLit:
      return Prog->makeExpr<StrLitExpr>(L, advance().Text);
    case TokKind::Ident: {
      std::string Name = peek().Text;
      if (EnumConstants.count(Name)) {
        advance();
        return Prog->makeExpr<IntLitExpr>(L, EnumConstants[Name]);
      }
      advance();
      return Prog->makeExpr<NameRefExpr>(L, std::move(Name));
    }
    case TokKind::LParen: {
      advance();
      Expr *E = parseExpr();
      if (!E || !expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    default:
      error("expected expression");
      return nullptr;
    }
  }

  std::vector<Token> Tokens;
  std::vector<std::string> &Errors;
  std::unique_ptr<Program> Prog;
  size_t Pos = 0;
  bool HadError = false;

  std::unordered_map<std::string, const Type *> Typedefs;
  std::unordered_map<std::string, int64_t> EnumConstants;
};

} // namespace

std::unique_ptr<Program>
mcfi::minic::parseProgram(const std::string &Source,
                          std::vector<std::string> &Errors) {
  std::vector<Token> Tokens = lex(Source, Errors);
  if (!Errors.empty())
    return nullptr;
  return ParserImpl(std::move(Tokens), Errors).run();
}
