file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_analyzer.dir/bench_table1_analyzer.cpp.o"
  "CMakeFiles/bench_table1_analyzer.dir/bench_table1_analyzer.cpp.o.d"
  "bench_table1_analyzer"
  "bench_table1_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
