//===- verifier/Verifier.cpp - Modular MCFI verification ------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "absint/AbsInt.h"
#include "support/StringUtils.h"
#include "visa/ISA.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace mcfi;
using namespace mcfi::visa;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const uint8_t *Code, size_t Size, const MCFIObject &Obj)
      : Code(Code), Size(Size), Obj(Obj) {}

  VerifyResult run(const VerifyOptions &Opts) {
    if (!Opts.UseSyntactic && !Opts.UseSemantic) {
      error("no verifier tier enabled");
      return std::move(Result);
    }
    Result.DecidedBy =
        Opts.UseSyntactic ? VerifyTier::Syntactic : VerifyTier::Semantic;
    indexAux();
    disassemble();
    if (Result.Ok) {
      // Structural checks hold for both tiers: they pin down the facts
      // (complete disassembly, table contents, boundaries, alignment)
      // that the template matcher and the abstract interpreter both
      // build on.
      checkJumpTables();
      checkBareRets();
      checkDirectBranchBoundaries();
      checkAlignment();
    }
    if (!Result.Ok)
      return std::move(Result);
    if (Opts.UseSyntactic) {
      checkBranchSequences();
      checkStoreMasks();
      checkStrayIndirects();
      checkDirectBranchSyntactic();
      if (Result.Ok || !Opts.UseSemantic)
        return std::move(Result);
      // The templates rejected; let the semantic engine decide. Keep the
      // template findings for diagnostics — if the module proves, they
      // describe why the fast path missed.
      Result.SyntacticFindings = std::move(Result.Errors);
      Result.Errors.clear();
      Result.Ok = true;
    }
    runSemantic();
    return std::move(Result);
  }

private:
  void error(const std::string &Msg) {
    Result.Ok = false;
    Result.Errors.push_back(Msg);
  }

  //===--------------------------------------------------------------------===//
  // Aux indexing
  //===--------------------------------------------------------------------===//

  void indexAux() {
    for (const BranchSite &BS : Obj.Aux.BranchSites)
      SiteByBranchOffset.emplace(BS.BranchOffset, &BS);
    for (const JumpTableInfo &JT : Obj.Aux.JumpTables) {
      JTByJmpOffset.emplace(JT.JmpOffset, &JT);
      DataRanges.emplace_back(JT.TableOffset, JT.TableOffset +
                                                  8 * JT.Targets.size());
    }
    std::sort(DataRanges.begin(), DataRanges.end());
  }

  bool inDataRange(uint64_t Off, uint64_t &RangeEnd) const {
    // DataRanges is sorted by begin offset: the only candidate is the
    // last range starting at or before Off.
    auto It = std::upper_bound(
        DataRanges.begin(), DataRanges.end(),
        std::make_pair(Off, std::numeric_limits<uint64_t>::max()));
    if (It == DataRanges.begin())
      return false;
    const auto &[B, E] = *std::prev(It);
    if (Off >= B && Off < E) {
      RangeEnd = E;
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Complete disassembly
  //===--------------------------------------------------------------------===//

  void disassemble() {
    uint64_t Off = 0;
    while (Off < Size) {
      uint64_t DataEnd;
      if (inDataRange(Off, DataEnd)) {
        Off = DataEnd;
        continue;
      }
      Instr I;
      if (!decode(Code, Size, Off, I)) {
        error(formatString("undecodable byte at offset 0x%llx",
                           static_cast<unsigned long long>(Off)));
        return;
      }
      Instrs.emplace(Off, I);
      Off += I.Length;
    }
  }

  const Instr *instrAt(uint64_t Off) const {
    auto It = Instrs.find(Off);
    return It == Instrs.end() ? nullptr : &It->second;
  }

  //===--------------------------------------------------------------------===//
  // Check-sequence templates (Fig. 4) — the syntactic tier
  //===--------------------------------------------------------------------===//

  /// Matches one instruction; advances \p Off on success.
  bool expect(uint64_t &Off, Opcode Op,
              const std::function<bool(const Instr &)> &Pred,
              const char *What) {
    const Instr *I = instrAt(Off);
    if (!I || I->Op != Op || (Pred && !Pred(*I))) {
      error(formatString("check sequence at 0x%llx: expected %s at 0x%llx",
                         static_cast<unsigned long long>(SeqStart), What,
                         static_cast<unsigned long long>(Off)));
      return false;
    }
    Off += I->Length;
    return true;
  }

  /// Verifies the core of a check transaction starting at \p Off (after
  /// the target register has been produced). On success, \p Off points at
  /// the final indirect branch and \p TryOff holds the retry target.
  bool matchCheckCore(uint64_t &Off, uint64_t &TryOff, uint64_t RetryTarget) {
    // andi r15, 0xffffffff
    if (!expect(Off, Opcode::AndImm,
                [](const Instr &I) {
                  return I.Rd == RegTarget && I.Imm == 0xffffffffull;
                },
                "sandbox mask"))
      return false;
    // Optional footnote-1 alignment mask (strictly stronger; accepted).
    if (const Instr *I = instrAt(Off);
        I && I->Op == Opcode::AndImm && I->Rd == RegTarget &&
        I->Imm == 0xfffffffcull)
      Off += I->Length;
    TryOff = Off;
    if (RetryTarget == ~0ull)
      RetryTarget = TryOff;
    // baryread r12, [idx]
    if (!expect(Off, Opcode::BaryRead,
                [](const Instr &I) { return I.Rd == RegBranchID; },
                "branch-ID read"))
      return false;
    // tableread r13, [r15]
    if (!expect(Off, Opcode::TableRead,
                [](const Instr &I) {
                  return I.Rd == RegTargetID && I.Ra == RegTarget;
                },
                "target-ID read"))
      return false;
    // xor r11, r12, r13
    if (!expect(Off, Opcode::Xor,
                [](const Instr &I) {
                  return I.Rd == RegIDDiff && I.Ra == RegBranchID &&
                         I.Rb == RegTargetID;
                },
                "ID comparison"))
      return false;
    // jz r11, Go
    uint64_t JzOff = Off;
    const Instr *Jz = instrAt(Off);
    if (!expect(Off, Opcode::Jz,
                [](const Instr &I) { return I.Ra == RegIDDiff; },
                "pass branch"))
      return false;
    uint64_t GoTarget = JzOff + Jz->Length + static_cast<int64_t>(Jz->Off);
    // movi r11, 1 ; and r11, r11, r13 ; jz r11, Halt
    if (!expect(Off, Opcode::MovImm,
                [](const Instr &I) { return I.Rd == RegIDDiff && I.Imm == 1; },
                "validity constant"))
      return false;
    if (!expect(Off, Opcode::And,
                [](const Instr &I) {
                  return I.Rd == RegIDDiff && I.Rb == RegTargetID;
                },
                "validity test"))
      return false;
    uint64_t JzHaltOff = Off;
    const Instr *JzHalt = instrAt(Off);
    if (!expect(Off, Opcode::Jz,
                [](const Instr &I) { return I.Ra == RegIDDiff; },
                "halt branch"))
      return false;
    uint64_t HaltTarget =
        JzHaltOff + JzHalt->Length + static_cast<int64_t>(JzHalt->Off);
    // xor ; andi 0xffff ; jnz Try
    if (!expect(Off, Opcode::Xor,
                [](const Instr &I) {
                  return I.Rd == RegIDDiff && I.Ra == RegBranchID &&
                         I.Rb == RegTargetID;
                },
                "version comparison"))
      return false;
    if (!expect(Off, Opcode::AndImm,
                [](const Instr &I) {
                  return I.Rd == RegIDDiff && I.Imm == 0xffffull;
                },
                "version mask"))
      return false;
    uint64_t JnzOff = Off;
    const Instr *Jnz = instrAt(Off);
    if (!expect(Off, Opcode::Jnz,
                [](const Instr &I) { return I.Ra == RegIDDiff; },
                "retry branch"))
      return false;
    uint64_t ActualRetry =
        JnzOff + Jnz->Length + static_cast<int64_t>(Jnz->Off);
    if (ActualRetry != RetryTarget) {
      error(formatString("check sequence at 0x%llx: retry branch escapes "
                         "the transaction",
                         static_cast<unsigned long long>(SeqStart)));
      return false;
    }
    // hlt
    if (HaltTarget != Off) {
      error(formatString("check sequence at 0x%llx: halt branch does not "
                         "target the hlt",
                         static_cast<unsigned long long>(SeqStart)));
      return false;
    }
    if (!expect(Off, Opcode::Halt, nullptr, "hlt"))
      return false;
    // Skip alignment no-ops between the hlt and the branch (call return
    // sites are pre-padded).
    uint64_t Cursor = Off;
    while (const Instr *I = instrAt(Cursor)) {
      if (I->Op != Opcode::Nop)
        break;
      Cursor += I->Length;
    }
    if (GoTarget != Off && GoTarget != Cursor) {
      error(formatString("check sequence at 0x%llx: pass branch does not "
                         "target the transfer",
                         static_cast<unsigned long long>(SeqStart)));
      return false;
    }
    Off = Cursor;
    return true;
  }

  void checkBranchSequences() {
    for (const BranchSite &BS : Obj.Aux.BranchSites) {
      SeqStart = BS.SeqStart;
      uint64_t Off = BS.SeqStart;
      uint64_t TryOff = 0;
      bool Core = false;
      switch (BS.Kind) {
      case BranchKind::Return:
        // pop r15
        Core = expect(Off, Opcode::Pop,
                      [](const Instr &I) { return I.Rd == RegTarget; },
                      "pop of return address") &&
               matchCheckCore(Off, TryOff, ~0ull);
        break;
      case BranchKind::IndirectCall:
      case BranchKind::IndirectJump:
        // mov r15, rX
        Core = expect(Off, Opcode::Mov,
                      [](const Instr &I) { return I.Rd == RegTarget; },
                      "target staging move") &&
               matchCheckCore(Off, TryOff, ~0ull);
        break;
      case BranchKind::PltJump: {
        // movi r15, &got$sym ; load r15, [r15]
        uint64_t Reload = Off;
        Core = expect(Off, Opcode::MovImm,
                      [](const Instr &I) { return I.Rd == RegTarget; },
                      "GOT address") &&
               expect(Off, Opcode::Load,
                      [](const Instr &I) {
                        return I.Rd == RegTarget && I.Ra == RegTarget &&
                               I.Off == 0;
                      },
                      "GOT load") &&
               matchCheckCore(Off, TryOff, Reload);
        break;
      }
      }
      if (!Core)
        continue;
      // The final transfer.
      if (Off != BS.BranchOffset) {
        error(formatString(
            "branch site at 0x%llx: declared branch offset mismatch",
            static_cast<unsigned long long>(BS.SeqStart)));
        continue;
      }
      const Instr *Br = instrAt(Off);
      Opcode Expected = BS.Kind == BranchKind::IndirectCall
                            ? Opcode::CallInd
                            : Opcode::JmpInd;
      if (!Br || Br->Op != Expected || Br->Ra != RegTarget) {
        error(formatString(
            "branch site at 0x%llx: terminal branch is not %s via r15",
            static_cast<unsigned long long>(BS.SeqStart),
            Expected == Opcode::CallInd ? "calli" : "jmpi"));
        continue;
      }
      CheckedBranchOffsets.insert(Off);
      SeqSpans.emplace_back(BS.SeqStart, Off + Br->Length);
    }
  }

  //===--------------------------------------------------------------------===//
  // Jump tables (structural: contents match the declaration)
  //===--------------------------------------------------------------------===//

  void checkJumpTables() {
    for (const JumpTableInfo &JT : Obj.Aux.JumpTables) {
      const Instr *Jmp = instrAt(JT.JmpOffset);
      if (!Jmp || Jmp->Op != Opcode::JmpInd) {
        error(formatString("jump table: no jmpi at 0x%llx",
                           static_cast<unsigned long long>(JT.JmpOffset)));
        continue;
      }
      CheckedBranchOffsets.insert(JT.JmpOffset);
      // Table entries must be the declared targets (stored as
      // *absolute* addresses after relocation: base + declared offset,
      // all within this module). The common base is recovered from the
      // first entry and must place every target inside the module.
      if (JT.Targets.empty()) {
        error("jump table with no targets");
        continue;
      }
      if (JT.TableOffset + 8 * JT.Targets.size() > Size) {
        error("jump table extends past the module");
        continue;
      }
      uint64_t First = 0;
      for (unsigned B = 0; B != 8; ++B)
        First |= static_cast<uint64_t>(Code[JT.TableOffset + B]) << (8 * B);
      if (First < JT.Targets[0]) {
        error("jump table entry below its declared target offset");
        continue;
      }
      uint64_t Base = First - JT.Targets[0];
      for (size_t E = 0; E != JT.Targets.size(); ++E) {
        uint64_t V = 0;
        for (unsigned B = 0; B != 8; ++B)
          V |= static_cast<uint64_t>(Code[JT.TableOffset + 8 * E + B])
               << (8 * B);
        if (V != Base + JT.Targets[E]) {
          error(formatString("jump table entry %zu at 0x%llx does not "
                             "match the declared target",
                             E,
                             static_cast<unsigned long long>(JT.TableOffset +
                                                             8 * E)));
          break;
        }
        if (JT.Targets[E] >= Size || !instrAt(JT.Targets[E])) {
          error(formatString("jump table target %zu (0x%llx) is not an "
                             "instruction boundary",
                             E,
                             static_cast<unsigned long long>(JT.Targets[E])));
          break;
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Structural sweeps shared by both tiers
  //===--------------------------------------------------------------------===//

  void checkBareRets() {
    for (const auto &[Off, I] : Instrs)
      if (I.Op == Opcode::Ret)
        error(formatString("bare ret at 0x%llx (must be rewritten)",
                           static_cast<unsigned long long>(Off)));
  }

  void checkDirectBranchBoundaries() {
    for (const auto &[Off, I] : Instrs) {
      if (I.Op != Opcode::Jmp && I.Op != Opcode::Jz && I.Op != Opcode::Jnz &&
          I.Op != Opcode::Call)
        continue;
      uint64_t Target = Off + I.Length + static_cast<int64_t>(I.Off);
      // Direct calls/jumps may leave the module (cross-module direct
      // calls after relocation); only intra-module targets are checked.
      if (Target >= Size)
        continue;
      if (!instrAt(Target))
        error(formatString("direct branch at 0x%llx targets a non-boundary",
                           static_cast<unsigned long long>(Off)));
    }
  }

  void checkAlignment() {
    for (const FunctionInfo &F : Obj.Aux.Functions) {
      if (F.AddressTaken && (F.CodeOffset & 3))
        error("address-taken function '" + F.Name + "' is not 4-aligned");
    }
    for (const CallSiteInfo &CS : Obj.Aux.CallSites) {
      if (!CS.IsSetjmp && (CS.RetSiteOffset & 3))
        error(formatString("return site at 0x%llx is not 4-aligned",
                           static_cast<unsigned long long>(
                               CS.RetSiteOffset)));
    }
  }

  //===--------------------------------------------------------------------===//
  // Syntactic-tier sweeps (template bookkeeping)
  //===--------------------------------------------------------------------===//

  void checkStrayIndirects() {
    for (const auto &[Off, I] : Instrs)
      if ((I.Op == Opcode::JmpInd || I.Op == Opcode::CallInd) &&
          !CheckedBranchOffsets.count(Off))
        error(formatString(
            "unchecked indirect branch at 0x%llx",
            static_cast<unsigned long long>(Off)));
  }

  void checkStoreMasks() {
    uint64_t PrevOff = ~0ull;
    const Instr *Prev = nullptr;
    for (const auto &[Off, I] : Instrs) {
      if (isStore(I.Op) && I.Rd != RegSP) {
        bool Masked = Prev && Prev->Op == Opcode::AndImm &&
                      Prev->Rd == I.Rd && Prev->Imm == 0xffffffffull &&
                      PrevOff + Prev->Length == Off;
        if (!Masked)
          error(formatString("unmasked memory write at 0x%llx",
                             static_cast<unsigned long long>(Off)));
        else
          MaskedStoreOffsets.insert(Off);
      }
      PrevOff = Off;
      Prev = &I;
    }
  }

  bool insideSeq(uint64_t Off) const {
    for (const auto &[B, E] : SeqSpans)
      if (Off > B && Off < E)
        return true;
    return false;
  }

  void checkDirectBranchSyntactic() {
    for (const auto &[Off, I] : Instrs) {
      if (I.Op != Opcode::Jmp && I.Op != Opcode::Jz && I.Op != Opcode::Jnz &&
          I.Op != Opcode::Call)
        continue;
      uint64_t Target = Off + I.Length + static_cast<int64_t>(I.Off);
      if (Target >= Size || !instrAt(Target))
        continue;
      // A branch may not hop into the middle of a check transaction
      // unless it is itself part of that transaction (the retry path).
      if (insideSeq(Target) && !insideSeq(Off)) {
        error(formatString("direct branch at 0x%llx enters a check "
                           "sequence",
                           static_cast<unsigned long long>(Off)));
      }
      // A branch may not target a masked store directly (bypassing the
      // mask).
      if (MaskedStoreOffsets.count(Target)) {
        error(formatString("direct branch at 0x%llx bypasses a sandbox "
                           "mask",
                           static_cast<unsigned long long>(Off)));
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Semantic tier
  //===--------------------------------------------------------------------===//

  void runSemantic() {
    Result.DecidedBy = VerifyTier::Semantic;
    absint::SemanticResult SR = absint::prove(Code, Size, Obj, Instrs);
    Result.FixpointIters = SR.FixpointIters;
    Result.SemanticBlocks = SR.Blocks;
    Result.SemanticEntries = SR.Entries;
    if (!SR.Ok) {
      Result.Ok = false;
      for (std::string &E : SR.Errors)
        Result.Errors.push_back(std::move(E));
    }
  }

  const uint8_t *Code;
  size_t Size;
  const MCFIObject &Obj;
  VerifyResult Result;

  std::map<uint64_t, Instr> Instrs;
  std::unordered_map<uint64_t, const BranchSite *> SiteByBranchOffset;
  std::unordered_map<uint64_t, const JumpTableInfo *> JTByJmpOffset;
  std::vector<std::pair<uint64_t, uint64_t>> DataRanges;
  std::vector<std::pair<uint64_t, uint64_t>> SeqSpans;
  std::unordered_set<uint64_t> CheckedBranchOffsets;
  std::unordered_set<uint64_t> MaskedStoreOffsets;
  uint64_t SeqStart = 0;
};

} // namespace

VerifyResult mcfi::verifyModule(const uint8_t *Code, size_t Size,
                                const MCFIObject &Obj,
                                const VerifyOptions &Opts) {
  return VerifierImpl(Code, Size, Obj).run(Opts);
}
