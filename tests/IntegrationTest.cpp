//===- tests/IntegrationTest.cpp - End-to-end pipeline tests --------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests of the full pipeline: MiniC source -> instrumented
/// module -> link (CFG generation + verification + table install) -> run
/// on the VM. These are the "does the whole system work" tests; each
/// subsystem also has its own focused suite.
///
//===----------------------------------------------------------------------===//

#include "toolchain/Toolchain.h"

#include <gtest/gtest.h>

using namespace mcfi;

namespace {

/// Compiles, links, runs; returns the run result and program output.
struct Executed {
  RunResult Result;
  std::string Output;
  CFGPolicy Policy;
};

Executed runSource(const std::string &Source, bool Instrument = true,
                   uint64_t Fuel = 50'000'000) {
  CompileOptions CO;
  CO.Instrument = Instrument;
  CompileResult CR = compileModule(Source, CO);
  EXPECT_TRUE(CR.Ok) << (CR.Errors.empty() ? "?" : CR.Errors.front());
  if (!CR.Ok)
    return {};

  Machine M;
  LinkOptions LO;
  LO.Verify = Instrument;
  LO.InstallPolicy = Instrument;
  LO.InstrumentBootstrap = Instrument;
  Linker L(M, LO);
  std::string Err;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(CR.Obj));
  EXPECT_TRUE(L.linkProgram(std::move(Objs), Err)) << Err;

  Executed E;
  E.Result = runProgram(M, Fuel);
  E.Output = M.takeOutput();
  E.Policy = L.policy();
  return E;
}

TEST(Integration, HelloWorldExitCode) {
  Executed E = runSource(R"(
    int main() {
      print_str("hello, mcfi\n");
      return 42;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Result.ExitCode, 42);
  EXPECT_EQ(E.Output, "hello, mcfi\n");
}

TEST(Integration, ArithmeticAndLoops) {
  Executed E = runSource(R"(
    int main() {
      long sum = 0;
      int i;
      for (i = 1; i <= 100; i = i + 1)
        sum = sum + i;
      print_int(sum);
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "5050\n");
}

TEST(Integration, DirectCallsAndRecursion) {
  Executed E = runSource(R"(
    long fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    int main() {
      print_int(fib(20));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "6765\n");
}

TEST(Integration, IndirectCallThroughFunctionPointer) {
  Executed E = runSource(R"(
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
    int main() {
      print_int(apply(add, 3, 4));
      print_int(apply(mul, 3, 4));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "7\n12\n");
  // Both targets share one equivalence class; policy has >= 1 class.
  EXPECT_GE(E.Policy.NumEQCs, 1u);
}

TEST(Integration, UninstrumentedBaselineRuns) {
  Executed E = runSource(R"(
    int twice(int x) { return x + x; }
    int main() {
      int (*f)(int) = twice;
      print_int(f(21));
      return 0;
    }
  )",
                         /*Instrument=*/false);
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "42\n");
}

TEST(Integration, OptimizedInstrumentationVerifiesAndRuns) {
  // Optimize output escapes the syntactic templates, so this exercises
  // the loader's two-tier verifier end to end: the module must still be
  // accepted (semantic proof) and compute the same results.
  CompileOptions CO;
  CO.Optimize = true;
  CompileResult CR = compileModule(R"(
    long g;
    long sel(long x) {
      switch (x) {
      case 0: return 5;
      case 1: return 7;
      case 2: return 9;
      case 3: return 11;
      default: return 0;
      }
    }
    long apply(long (*f)(long), long v) { g = g + v; return f(v); }
    int main() {
      long s = 0;
      long i;
      for (i = 0; i < 5; i = i + 1)
        s = s + apply(sel, i);
      print_int(s);
      print_int(g);
      return 0;
    }
  )",
                                   CO);
  ASSERT_TRUE(CR.Ok) << (CR.Errors.empty() ? "?" : CR.Errors.front());

  Machine M;
  Linker L(M);
  std::string Err;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(CR.Obj));
  ASSERT_TRUE(L.linkProgram(std::move(Objs), Err)) << Err;
  RunResult R = runProgram(M, 50'000'000);
  EXPECT_EQ(R.Reason, StopReason::Exited) << R.Message;
  EXPECT_EQ(M.takeOutput(), "32\n10\n");
}

TEST(Integration, StructsAndPointers) {
  Executed E = runSource(R"(
    struct Point { long x; long y; };
    long dot(struct Point *a, struct Point *b) {
      return a->x * b->x + a->y * b->y;
    }
    int main() {
      struct Point p;
      struct Point q;
      p.x = 3; p.y = 4;
      q.x = 5; q.y = 6;
      print_int(dot(&p, &q));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "39\n");
}

TEST(Integration, MallocAndArrays) {
  Executed E = runSource(R"(
    int main() {
      long *a = (long *)malloc(10 * sizeof(long));
      int i;
      for (i = 0; i < 10; i = i + 1)
        a[i] = i * i;
      long sum = 0;
      for (i = 0; i < 10; i = i + 1)
        sum = sum + a[i];
      print_int(sum);
      free(a);
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "285\n");
}

TEST(Integration, SwitchJumpTable) {
  Executed E = runSource(R"(
    int classify(int x) {
      switch (x) {
      case 0: return 100;
      case 1: return 101;
      case 2: return 102;
      case 3: return 103;
      case 4: return 104;
      case 5: return 105;
      default: return -1;
      }
    }
    int main() {
      int i;
      for (i = -1; i <= 6; i = i + 1)
        print_int(classify(i));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "-1\n100\n101\n102\n103\n104\n105\n-1\n");
}

TEST(Integration, GlobalsAndStrings) {
  Executed E = runSource(R"(
    long counter = 7;
    char *greeting = "hi";
    long bump(long by) { counter = counter + by; return counter; }
    int main() {
      print_str(greeting);
      print_str("\n");
      print_int(bump(3));
      print_int(bump(-10));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "hi\n10\n0\n");
}

TEST(Integration, GlobalFunctionPointerInitializer) {
  Executed E = runSource(R"(
    int inc(int x) { return x + 1; }
    int (*op)(int) = inc;
    int main() {
      print_int(op(41));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "42\n");
}

TEST(Integration, SetjmpLongjmp) {
  Executed E = runSource(R"(
    long buf[4];
    void deep(int n) {
      if (n == 0)
        longjmp(buf, 99);
      deep(n - 1);
    }
    int main() {
      int r = setjmp(buf);
      if (r != 0) {
        print_int(r);
        return 0;
      }
      deep(5);
      print_int(-1);
      return 1;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "99\n");
  EXPECT_EQ(E.Result.ExitCode, 0);
}

TEST(Integration, SignalHandlerDispatch) {
  Executed E = runSource(R"(
    int fired = 0;
    void on_sig(int sig) { fired = sig; }
    int main() {
      signal(7, on_sig);
      raise(7);
      print_int(fired);
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "7\n");
}

TEST(Integration, TailCallChain) {
  Executed E = runSource(R"(
    long even(long n);
    long odd(long n) {
      if (n == 0) return 0;
      return even(n - 1);
    }
    long even(long n) {
      if (n == 0) return 1;
      return odd(n - 1);
    }
    int main() {
      print_int(even(100000)); /* deep without tail calls */
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "1\n");
}

TEST(Integration, GotoAndLabels) {
  Executed E = runSource(R"(
    int main() {
      long i = 0;
      long acc = 0;
    again:
      acc = acc + i;
      i = i + 1;
      if (i < 5) goto again;
      if (acc != 10) goto fail;
      print_int(acc);
      return 0;
    fail:
      print_str("bad\n");
      return 1;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "10\n");
}

TEST(Integration, DoWhileAndNestedBreakContinue) {
  Executed E = runSource(R"(
    int main() {
      long acc = 0;
      long i = 0;
      do {
        i = i + 1;
        long j;
        for (j = 0; j < 10; j = j + 1) {
          if (j == 3) continue;
          if (j == 7) break;
          acc = acc + 1;
        }
      } while (i < 4);
      print_int(acc); /* 4 iterations * 6 counted j values */
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "24\n");
}

TEST(Integration, CharArithmeticAndSignExtension) {
  Executed E = runSource(R"(
    int main() {
      char buf[8];
      buf[0] = 'A';
      buf[1] = (char)200;   /* negative as signed char */
      buf[2] = 0;
      long a = buf[0];      /* 65 */
      long b = buf[1];      /* sign-extended: 200-256 = -56 */
      print_int(a);
      print_int(b);
      unsigned char *u = (unsigned char *)buf;
      print_int(u[1]);      /* zero-extended: 200 */
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "65\n-56\n200\n");
}

TEST(Integration, PointerArithmeticScaling) {
  Executed E = runSource(R"(
    struct Pair { long a; long b; };
    int main() {
      struct Pair v[3];
      v[0].a = 1; v[0].b = 2;
      v[1].a = 3; v[1].b = 4;
      v[2].a = 5; v[2].b = 6;
      struct Pair *p = v;
      p = p + 2;              /* scaled by sizeof(struct Pair) */
      print_int(p->a + p->b); /* 11 */
      long *q = &v[0].a;
      print_int((long)(&v[2].a - &v[0].a)); /* element distance: 4 longs */
      print_int(q[3]);        /* v[1].b */
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "11\n4\n4\n");
}

TEST(Integration, ConditionalAndShortCircuitValues) {
  Executed E = runSource(R"(
    long calls = 0;
    long bump(long v) { calls = calls + 1; return v; }
    int main() {
      long x = 5 > 3 ? 10 : 20;
      print_int(x);
      /* short circuit: bump must not run */
      if (0 && bump(1)) print_str("no\n");
      if (1 || bump(1)) print_int(calls);
      long y = !0 + !7;
      print_int(y);
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "10\n0\n1\n");
}

TEST(Integration, FunctionPointerArraysAndDoubleIndirection) {
  Executed E = runSource(R"(
    long f1(long x) { return x + 1; }
    long f2(long x) { return x + 2; }
    long (*tab[2])(long);
    long call_via(long (**slot)(long), long v) { return (*slot)(v); }
    int main() {
      tab[0] = f1;
      tab[1] = f2;
      print_int(call_via(&tab[0], 10));
      print_int(call_via(&tab[1], 10));
      return 0;
    }
  )");
  EXPECT_EQ(E.Result.Reason, StopReason::Exited) << E.Result.Message;
  EXPECT_EQ(E.Output, "11\n12\n");
}

TEST(Integration, SeparateCompilationTwoModules) {
  CompileResult LibCR = compileModule(R"(
    int helper(int x) { return x * 3; }
    int use_cb(int (*cb)(int), int v) { return cb(v); }
  )",
                                      {.ModuleName = "lib"});
  ASSERT_TRUE(LibCR.Ok) << LibCR.Errors.front();

  CompileResult MainCR = compileModule(R"(
    int helper(int x);
    int use_cb(int (*cb)(int), int v);
    int local(int x) { return x + 1; }
    int main() {
      print_int(helper(5));
      print_int(use_cb(local, 10));
      return 0;
    }
  )",
                                       {.ModuleName = "main"});
  ASSERT_TRUE(MainCR.Ok) << MainCR.Errors.front();

  Machine M;
  Linker L(M);
  std::string Err;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(MainCR.Obj));
  Objs.push_back(std::move(LibCR.Obj));
  ASSERT_TRUE(L.linkProgram(std::move(Objs), Err)) << Err;

  RunResult R = runProgram(M);
  EXPECT_EQ(R.Reason, StopReason::Exited) << R.Message;
  EXPECT_EQ(M.takeOutput(), "15\n11\n");
}

} // namespace
