//===- tools/ToolCommon.h - Shared CLI plumbing -----------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef MCFI_TOOLS_TOOLCOMMON_H
#define MCFI_TOOLS_TOOLCOMMON_H

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace mcfi {
namespace tools {

inline bool readFileBytes(const std::string &Path,
                          std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

inline bool readFileText(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

inline bool writeFileBytes(const std::string &Path,
                           const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return Out.good();
}

/// Escapes \p S for inclusion in a JSON string literal (the shared
/// machine-readable output of mcfi-audit and mcfi-verify --json).
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

[[noreturn]] inline void usage(const char *Msg) {
  std::fprintf(stderr, "%s\n", Msg);
  std::exit(2);
}

//===----------------------------------------------------------------------===//
// Embedded-module extraction (shared by mcfi-audit and mcfi-merge)
//===----------------------------------------------------------------------===//

/// One MiniC module recovered from a C++ example file.
struct ModuleSource {
  std::string Name;
  std::string Source;
};

/// Recovers a module name for the raw string starting at \p Pos in \p
/// Text: the nearest preceding quoted literal in the same statement
/// (compileTo("mathlib", R"(...)), else an identifier ending in
/// "Source" (const char *HostSource = R"(...)), else mod<N>.
inline std::string guessName(const std::string &Text, size_t Pos,
                             size_t Index) {
  size_t Start = Text.rfind(';', Pos);
  Start = Start == std::string::npos ? 0 : Start + 1;
  std::string Stmt = Text.substr(Start, Pos - Start);

  size_t Close = Stmt.rfind('"');
  if (Close != std::string::npos && Close > 0) {
    size_t Open = Stmt.rfind('"', Close - 1);
    if (Open != std::string::npos && Close > Open + 1)
      return Stmt.substr(Open + 1, Close - Open - 1);
  }

  size_t Src = Stmt.rfind("Source");
  if (Src != std::string::npos) {
    size_t B = Src;
    while (B > 0 && (std::isalnum(Stmt[B - 1]) || Stmt[B - 1] == '_'))
      --B;
    if (B < Src) {
      std::string Name = Stmt.substr(B, Src - B);
      for (char &C : Name)
        C = static_cast<char>(std::tolower(C));
      return Name;
    }
  }
  return "mod" + std::to_string(Index);
}

/// Pulls every R"( ... )" raw-string literal out of a C++ file.
inline std::vector<ModuleSource> extractModules(const std::string &Text) {
  std::vector<ModuleSource> Out;
  size_t Pos = 0;
  while ((Pos = Text.find("R\"(", Pos)) != std::string::npos) {
    size_t BodyStart = Pos + 3;
    size_t End = Text.find(")\"", BodyStart);
    if (End == std::string::npos)
      break;
    Out.push_back({guessName(Text, Pos, Out.size()),
                   Text.substr(BodyStart, End - BodyStart)});
    Pos = End + 2;
  }
  return Out;
}

/// Path basename without extension ("dir/a.mc" -> "a").
inline std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  return Dot == std::string::npos ? Base : Base.substr(0, Dot);
}

} // namespace tools
} // namespace mcfi

#endif // MCFI_TOOLS_TOOLCOMMON_H
