//===- examples/jit_server.cpp - Frequent code installation ---------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's JIT discussion (Sec. 8.1): "in Just-In-Time compilation
/// environments such as the Google V8 JavaScript engine ... the number
/// of indirect branch executions is roughly 10^8 times of CFG updates
/// triggered by dynamic code installation." This example plays a tiny
/// JIT server: it keeps compiling new "op" modules at runtime, installs
/// each with a dynamic link (new CFG + TxUpdate), and a guest dispatcher
/// thread keeps making checked indirect calls throughout. The run ends
/// with the number of CFG versions installed and proof that no check
/// ever failed spuriously.
///
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "toolchain/Toolchain.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace mcfi;

int main() {
  // The host program spins on an indirect call through a table the
  // freshly-jitted ops are swapped into via dlsym.
  const char *HostSource = R"(
    long (*current_op)(long) = NULL;
    long fallback(long x) { return x; }
    long (*boot)(long) = fallback;

    void spinner(void) {
      long acc = 0;
      long i = 0;
      current_op = fallback;
      while (1) {
        acc = acc + current_op(i);
        i = i + 1;
      }
    }
    int main() { return 0; }
  )";

  CompileResult Host = compileModule(HostSource, {.ModuleName = "host"});
  if (!Host.Ok) {
    std::fprintf(stderr, "host compile failed: %s\n",
                 Host.Errors.front().c_str());
    return 1;
  }

  Machine M;
  Linker L(M);
  std::string Err;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(Host.Obj));
  if (!L.linkProgram(std::move(Objs), Err)) {
    std::fprintf(stderr, "link failed: %s\n", Err.c_str());
    return 1;
  }

  // Guest dispatcher thread.
  Thread T;
  if (!M.makeThread("spinner", T)) {
    std::fprintf(stderr, "no spinner\n");
    return 1;
  }
  std::atomic<bool> Stop{false};
  std::atomic<bool> Violated{false};
  std::thread Guest([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      RunResult R = M.run(T, 400'000);
      if (R.Reason != StopReason::OutOfFuel) {
        Violated.store(R.Reason == StopReason::CfiViolation);
        std::fprintf(stderr, "guest stopped: %s\n", R.Message.c_str());
        return;
      }
    }
  });

  // The "JIT": compile, register, and dynamically link 24 fresh op
  // modules, swapping each into the dispatcher's function pointer.
  uint64_t CurrentOpAddr = 0;
  for (const MappedModule &Mod : M.modules()) {
    auto It = Mod.Obj->DataSymbols.find("current_op");
    if (It != Mod.Obj->DataSymbols.end())
      CurrentOpAddr = Mod.DataBase + It->second;
  }

  int Installed = 0;
  for (int Gen = 0; Gen != 24 && !Violated.load(); ++Gen) {
    std::string OpSource = formatString(
        "long op%d(long x) { return x * %d + %d; }\n"
        "long (*export%d)(long) = op%d;\n",
        Gen, Gen + 2, Gen, Gen, Gen);
    CompileResult Op =
        compileModule(OpSource, {.ModuleName = "jit" + std::to_string(Gen)});
    if (!Op.Ok) {
      std::fprintf(stderr, "jit compile failed\n");
      break;
    }
    int Id = L.registerLibrary(std::move(Op.Obj));
    int64_t Handle = L.dlopen(Id);
    if (Handle < 0) {
      std::fprintf(stderr, "dlopen failed: %s\n", L.lastError().c_str());
      break;
    }
    // Swap the dispatcher to the new op (a data write, like a JIT
    // updating its dispatch table).
    uint64_t NewOp =
        M.findFunction(formatString("op%d", Gen));
    M.store(CurrentOpAddr, 8, NewOp);
    ++Installed;
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }

  Stop.store(true);
  Guest.join();

  std::printf("installed %d jitted modules; CFG version now %u after %llu "
              "update transactions\n",
              Installed, M.tables().currentVersion(),
              static_cast<unsigned long long>(M.tables().updateCount()));
  std::printf("dispatcher executed %llu instructions across the updates; "
              "spurious CFI failures: %s\n",
              static_cast<unsigned long long>(T.Instructions),
              Violated.load() ? "YES (bug!)" : "none");
  if (M.tables().versionSpaceLow())
    std::printf("note: version space low; a real runtime would quiesce "
                "and resetVersionEpoch()\n");
  return Violated.load() ? 1 : 0;
}
