file(REMOVE_RECURSE
  "libmcfi_visa.a"
)
