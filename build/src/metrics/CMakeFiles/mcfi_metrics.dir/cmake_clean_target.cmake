file(REMOVE_RECURSE
  "libmcfi_metrics.a"
)
