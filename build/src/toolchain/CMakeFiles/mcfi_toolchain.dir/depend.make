# Empty dependencies file for mcfi_toolchain.
# This may be replaced when dependencies are built.
