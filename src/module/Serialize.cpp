//===- module/Serialize.cpp - .mcfo binary serialization ------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Binary serialization of MCFIObject. The format is a straightforward
/// length-prefixed encoding with a magic header; the reader bounds-checks
/// everything so that a corrupted module file fails cleanly rather than
/// crashing the loader.
///
//===----------------------------------------------------------------------===//

#include "module/MCFIObject.h"

#include <cstddef>
#include <cstring>

using namespace mcfi;

namespace {

constexpr uint32_t Magic = 0x4f46434d; // "MCFO"
constexpr uint32_t Version = 5;

class Writer {
public:
  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void bytes(const std::vector<uint8_t> &B) {
    u64(B.size());
    Out.insert(Out.end(), B.begin(), B.end());
  }

  std::vector<uint8_t> Out;
};

class Reader {
public:
  Reader(const std::vector<uint8_t> &Blob) : Blob(Blob) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Blob.size())
      return false;
    V = Blob[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > Blob.size())
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Blob[Pos++]) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > Blob.size())
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Blob[Pos++]) << (8 * I);
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Pos + N > Blob.size())
      return false;
    S.assign(reinterpret_cast<const char *>(Blob.data()) + Pos, N);
    Pos += N;
    return true;
  }
  bool bytes(std::vector<uint8_t> &B) {
    uint64_t N;
    if (!u64(N) || Pos + N > Blob.size())
      return false;
    B.assign(Blob.begin() + static_cast<ptrdiff_t>(Pos),
             Blob.begin() + static_cast<ptrdiff_t>(Pos + N));
    Pos += N;
    return true;
  }
  bool done() const { return Pos == Blob.size(); }

private:
  const std::vector<uint8_t> &Blob;
  size_t Pos = 0;
};

} // namespace

std::vector<uint8_t> mcfi::writeObject(const MCFIObject &Obj) {
  Writer W;
  W.u32(Magic);
  W.u32(Version);
  W.str(Obj.Name);
  W.bytes(Obj.Code);
  W.u64(Obj.DataSize);

  W.u32(static_cast<uint32_t>(Obj.DataInit.size()));
  for (const auto &[Off, Bytes] : Obj.DataInit) {
    W.u64(Off);
    W.bytes(Bytes);
  }

  W.u32(static_cast<uint32_t>(Obj.DataSymbols.size()));
  for (const auto &[Name, Off] : Obj.DataSymbols) {
    W.str(Name);
    W.u64(Off);
  }

  W.u32(static_cast<uint32_t>(Obj.Relocs.size()));
  for (const visa::RelocEntry &R : Obj.Relocs) {
    W.u8(static_cast<uint8_t>(R.Kind));
    W.u64(R.Offset);
    W.str(R.Symbol);
    W.u64(R.Addend);
    W.u32(R.SiteId);
  }

  W.u32(static_cast<uint32_t>(Obj.Aux.Functions.size()));
  for (const FunctionInfo &F : Obj.Aux.Functions) {
    W.str(F.Name);
    W.str(F.TypeSig);
    W.str(F.PrettyType);
    W.u64(F.CodeOffset);
    W.u8(F.AddressTaken);
    W.u8(F.Variadic);
  }

  W.u32(static_cast<uint32_t>(Obj.Aux.BranchSites.size()));
  for (const BranchSite &B : Obj.Aux.BranchSites) {
    W.u8(static_cast<uint8_t>(B.Kind));
    W.u64(B.SeqStart);
    W.u64(B.BranchOffset);
    W.str(B.Function);
    W.str(B.TypeSig);
    W.u8(B.VariadicPointer);
    W.str(B.PltSymbol);
  }

  W.u32(static_cast<uint32_t>(Obj.Aux.CallSites.size()));
  for (const CallSiteInfo &C : Obj.Aux.CallSites) {
    W.str(C.Caller);
    W.u64(C.RetSiteOffset);
    W.u8(C.Direct);
    W.str(C.Callee);
    W.str(C.TypeSig);
    W.u8(C.VariadicPointer);
    W.u8(C.IsSetjmp);
  }

  W.u32(static_cast<uint32_t>(Obj.Aux.TailCalls.size()));
  for (const TailCallInfo &T : Obj.Aux.TailCalls) {
    W.str(T.Caller);
    W.u8(T.Direct);
    W.str(T.Callee);
    W.str(T.TypeSig);
    W.u8(T.VariadicPointer);
  }

  W.u32(static_cast<uint32_t>(Obj.Aux.JumpTables.size()));
  for (const JumpTableInfo &J : Obj.Aux.JumpTables) {
    W.str(J.Function);
    W.u64(J.JmpOffset);
    W.u64(J.TableOffset);
    W.u32(static_cast<uint32_t>(J.Targets.size()));
    for (uint64_t T : J.Targets)
      W.u64(T);
  }

  W.u32(static_cast<uint32_t>(Obj.Imports.size()));
  for (const std::string &S : Obj.Imports)
    W.str(S);

  W.u32(static_cast<uint32_t>(Obj.Aux.AddressTakenImports.size()));
  for (const std::string &S : Obj.Aux.AddressTakenImports)
    W.str(S);

  W.str(Obj.EntryFunction);
  return std::move(W.Out);
}

bool mcfi::readObject(const std::vector<uint8_t> &Blob, MCFIObject &Out) {
  Reader R(Blob);
  uint32_t M, V;
  if (!R.u32(M) || M != Magic || !R.u32(V) || V != Version)
    return false;
  Out = MCFIObject();
  if (!R.str(Out.Name) || !R.bytes(Out.Code) || !R.u64(Out.DataSize))
    return false;

  uint32_t N;
  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    uint64_t Off;
    std::vector<uint8_t> Bytes;
    if (!R.u64(Off) || !R.bytes(Bytes) || Off + Bytes.size() > Out.DataSize)
      return false;
    Out.DataInit.emplace_back(Off, std::move(Bytes));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    std::string Name;
    uint64_t Off;
    if (!R.str(Name) || !R.u64(Off) || Off >= std::max<uint64_t>(Out.DataSize, 1))
      return false;
    Out.DataSymbols.emplace(std::move(Name), Off);
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    visa::RelocEntry E;
    uint8_t K;
    if (!R.u8(K) ||
        K > static_cast<uint8_t>(visa::RelocKind::CodeAddr64) ||
        !R.u64(E.Offset) || !R.str(E.Symbol) || !R.u64(E.Addend) ||
        !R.u32(E.SiteId))
      return false;
    E.Kind = static_cast<visa::RelocKind>(K);
    bool InData = E.Kind == visa::RelocKind::DataFuncAddr64 ||
                  E.Kind == visa::RelocKind::DataGlobalAddr64;
    if (InData ? E.Offset + 8 > Out.DataSize : E.Offset >= Out.Code.size())
      return false;
    Out.Relocs.push_back(std::move(E));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    FunctionInfo F;
    uint8_t AT, Va;
    if (!R.str(F.Name) || !R.str(F.TypeSig) || !R.str(F.PrettyType) ||
        !R.u64(F.CodeOffset) || !R.u8(AT) || !R.u8(Va) ||
        F.CodeOffset >= Out.Code.size())
      return false;
    F.AddressTaken = AT;
    F.Variadic = Va;
    Out.Aux.Functions.push_back(std::move(F));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    BranchSite B;
    uint8_t K, VP;
    if (!R.u8(K) || K > static_cast<uint8_t>(BranchKind::PltJump) ||
        !R.u64(B.SeqStart) || !R.u64(B.BranchOffset) || !R.str(B.Function) ||
        !R.str(B.TypeSig) || !R.u8(VP) || !R.str(B.PltSymbol) ||
        B.BranchOffset >= Out.Code.size())
      return false;
    B.Kind = static_cast<BranchKind>(K);
    B.VariadicPointer = VP;
    Out.Aux.BranchSites.push_back(std::move(B));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    CallSiteInfo C;
    uint8_t D, VP, SJ;
    if (!R.str(C.Caller) || !R.u64(C.RetSiteOffset) || !R.u8(D) ||
        !R.str(C.Callee) || !R.str(C.TypeSig) || !R.u8(VP) || !R.u8(SJ) ||
        C.RetSiteOffset > Out.Code.size())
      return false;
    C.Direct = D;
    C.VariadicPointer = VP;
    C.IsSetjmp = SJ;
    Out.Aux.CallSites.push_back(std::move(C));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    TailCallInfo T;
    uint8_t D, VP;
    if (!R.str(T.Caller) || !R.u8(D) || !R.str(T.Callee) || !R.str(T.TypeSig) ||
        !R.u8(VP))
      return false;
    T.Direct = D;
    T.VariadicPointer = VP;
    Out.Aux.TailCalls.push_back(std::move(T));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    JumpTableInfo J;
    uint32_t NT;
    if (!R.str(J.Function) || !R.u64(J.JmpOffset) || !R.u64(J.TableOffset) ||
        !R.u32(NT) || J.JmpOffset >= Out.Code.size() ||
        J.TableOffset + 8ull * NT > Out.Code.size())
      return false;
    for (uint32_t T = 0; T != NT; ++T) {
      uint64_t Target;
      if (!R.u64(Target) || Target >= Out.Code.size())
        return false;
      J.Targets.push_back(Target);
    }
    Out.Aux.JumpTables.push_back(std::move(J));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    Out.Imports.push_back(std::move(S));
  }

  if (!R.u32(N))
    return false;
  for (uint32_t I = 0; I != N; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    Out.Aux.AddressTakenImports.push_back(std::move(S));
  }

  if (!R.str(Out.EntryFunction))
    return false;
  if (!R.done())
    return false;
  // Derived field, not part of the wire format.
  computeIBTOffsets(Out.Aux);
  return true;
}
