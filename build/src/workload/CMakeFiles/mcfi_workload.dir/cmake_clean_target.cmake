file(REMOVE_RECURSE
  "libmcfi_workload.a"
)
