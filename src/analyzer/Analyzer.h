//===- analyzer/Analyzer.h - C1/C2 condition analyzer -----------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static analyzer of paper Sec. 6 (built on Clang's StaticChecker in
/// the original). It over-approximates violations of the two conditions
/// for type-matching CFG generation:
///
///   C1: no type cast to or from function-pointer types (including
///       implicit casts: union fields, struct-to-struct casts whose
///       pointees contain incompatible function-pointer fields);
///   C2: no (unannotated) inline assembly.
///
/// Five false-positive elimination rules prune C1 reports (Table 1):
///   UC — upcasts between physical-subtype structs;
///   DC — downcasts guarded by a type-tag discipline the user attests to
///        (AnalyzerConfig::TaggedAbstractStructs);
///   MF — void* casts at malloc/free boundaries;
///   SU — function pointers updated with literals (NULL etc.);
///   NF — casts after which only non-function-pointer fields are used.
///
/// Remaining violations are classified (Table 2):
///   K1 — a function pointer is initialized/assigned with the address of
///        a function of an incompatible type (these need source fixes:
///        the generated CFG would miss edges);
///   K2 — a function pointer is cast to another type (and typically cast
///        back later); these do not break the generated CFG.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_ANALYZER_ANALYZER_H
#define MCFI_ANALYZER_ANALYZER_H

#include "minic/AST.h"

#include <set>
#include <string>
#include <vector>

namespace mcfi {

/// Rules that can eliminate a C1 report as a false positive.
enum class FPRule : uint8_t { None, UC, DC, MF, SU, NF };

/// Residual classification of surviving C1 violations.
enum class ResidualKind : uint8_t { None, K1, K2 };

struct C1Violation {
  minic::SourceLoc Loc;
  const Type *From = nullptr;
  const Type *To = nullptr;
  FPRule Eliminated = FPRule::None;
  ResidualKind Residual = ResidualKind::None;
  std::string Description;
  /// Witness chain attached by the interprocedural dataflow engine when
  /// it proves this violation puts an incompatible function into an
  /// indirect call (see dataflow/Dataflow.h refineResidualsWithFlow);
  /// formatted "what happened (module:line:col)" hops, seed first.
  std::vector<std::string> Witness;
};

struct C2Violation {
  minic::SourceLoc Loc;
  bool Annotated = false; ///< annotated assemblies satisfy C2
};

struct AnalyzerConfig {
  /// Abstract struct tags whose downcasts follow a checked type-tag
  /// discipline (fed to the analyzer "manually or inferred", per the
  /// paper). Downcasts from these become DC false positives.
  std::set<std::string> TaggedAbstractStructs;
};

struct AnalysisReport {
  std::vector<C1Violation> C1;
  std::vector<C2Violation> C2;

  /// Table 1 counters.
  unsigned VBE = 0; ///< violations before elimination
  unsigned UC = 0, DC = 0, MF = 0, SU = 0, NF = 0;
  unsigned VAE = 0; ///< violations after elimination
  /// Table 2 counters.
  unsigned K1 = 0, K2 = 0;
  /// Unannotated inline assemblies (C2 violations).
  unsigned C2Count = 0;
};

/// Analyzes a type-checked program.
AnalysisReport analyzeConditions(minic::Program &Prog,
                                 const AnalyzerConfig &Config = {});

} // namespace mcfi

#endif // MCFI_ANALYZER_ANALYZER_H
