# Empty dependencies file for mcfi_module.
# This may be replaced when dependencies are built.
