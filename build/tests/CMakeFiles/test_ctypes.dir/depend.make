# Empty dependencies file for test_ctypes.
# This may be replaced when dependencies are built.
