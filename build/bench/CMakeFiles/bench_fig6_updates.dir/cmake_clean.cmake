file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_updates.dir/bench_fig6_updates.cpp.o"
  "CMakeFiles/bench_fig6_updates.dir/bench_fig6_updates.cpp.o.d"
  "bench_fig6_updates"
  "bench_fig6_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
