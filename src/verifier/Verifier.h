//===- verifier/Verifier.h - Modular MCFI verification ----------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent MCFI verifier (paper Sec. 7). It takes a loaded,
/// relocated module, disassembles it completely (the auxiliary info makes
/// complete disassembly possible: jump tables are identified, and all
/// indirect-branch sequences are listed), and checks that:
///
///  - every byte decodes as part of exactly one instruction or a declared
///    jump table;
///  - no bare `ret` exists, and every `jmpi`/`calli` is the terminal
///    branch of a declared check sequence whose instructions match the
///    blessed Fig. 4 template (or a declared, bounds-checked jump-table
///    dispatch whose table entries match the declared targets);
///  - every memory write through a non-stack register is immediately
///    preceded by the sandbox mask;
///  - direct branches never jump into the middle of a check sequence or
///    between a mask and its store (so the checks cannot be bypassed);
///  - indirect-branch targets (address-taken function entries and return
///    sites) are 4-byte aligned.
///
/// The verifier removes the rewriter from the trusted computing base: a
/// module produced by *any* compiler is safe to load if it verifies.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_VERIFIER_VERIFIER_H
#define MCFI_VERIFIER_VERIFIER_H

#include "module/MCFIObject.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mcfi {

struct VerifyResult {
  bool Ok = true;
  std::vector<std::string> Errors;
};

/// Verifies the (relocated) code bytes of a module against its auxiliary
/// info. \p Code/\p Size are the module's bytes as loaded; offsets in
/// \p Obj are module-relative.
VerifyResult verifyModule(const uint8_t *Code, size_t Size,
                          const MCFIObject &Obj);

} // namespace mcfi

#endif // MCFI_VERIFIER_VERIFIER_H
