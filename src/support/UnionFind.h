//===- support/UnionFind.h - Disjoint-set forest ----------------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A disjoint-set forest with path compression and union by size. The CFG
/// generator uses it to merge overlapping indirect-branch target sets into
/// equivalence classes (Sec. 2 of the paper: "If two indirect branches
/// target two sets of destinations and those two sets are not disjoint,
/// the two sets are merged into one equivalence class").
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_SUPPORT_UNIONFIND_H
#define MCFI_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace mcfi {

/// Disjoint-set forest over dense indices [0, size).
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N), Size(N, 1) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  /// Returns the canonical representative of \p X's class.
  uint32_t find(uint32_t X) {
    assert(X < Parent.size() && "index out of range");
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression.
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Merges the classes of \p A and \p B; returns the new representative.
  uint32_t merge(uint32_t A, uint32_t B) {
    uint32_t RA = find(A), RB = find(B);
    if (RA == RB)
      return RA;
    if (Size[RA] < Size[RB])
      std::swap(RA, RB);
    Parent[RB] = RA;
    Size[RA] += Size[RB];
    return RA;
  }

  /// Returns true if \p A and \p B are in the same class.
  bool connected(uint32_t A, uint32_t B) { return find(A) == find(B); }

  /// Number of elements.
  size_t size() const { return Parent.size(); }

  /// Counts distinct classes (O(n)).
  size_t numClasses() {
    size_t N = 0;
    for (uint32_t I = 0, E = Parent.size(); I != E; ++I)
      if (find(I) == I)
        ++N;
    return N;
  }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint32_t> Size;
};

} // namespace mcfi

#endif // MCFI_SUPPORT_UNIONFIND_H
