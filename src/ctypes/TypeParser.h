//===- ctypes/TypeParser.h - Parse compact C type syntax --------*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the compact C-like type syntax used in assembly type
/// annotations (paper Sec. 6, condition C2: inline assembly requires type
/// annotations for the function pointers and functions it uses) and in the
/// serialized auxiliary type info of MCFI modules.
///
/// Grammar (right-associated postfixes):
///   type     := base postfix*
///   base     := ["unsigned"] ("void"|"char"|"short"|"int"|"long"|"float"
///               |"double") | ("struct"|"union") IDENT
///   postfix  := "*"                      pointer
///             | "(*)(" params ")"        pointer-to-function
///             | "(" params ")"           function
///   params   := [type ("," type)*] [","] ["..."]
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_CTYPES_TYPEPARSER_H
#define MCFI_CTYPES_TYPEPARSER_H

#include "ctypes/Type.h"

#include <string_view>

namespace mcfi {

/// Parses \p Text into a type in \p Ctx. Returns nullptr (and fills
/// \p ErrorOut if non-null) on malformed input. Struct/union references
/// resolve against records already registered in \p Ctx, creating
/// incomplete records for unknown tags.
const Type *parseType(std::string_view Text, TypeContext &Ctx,
                      std::string *ErrorOut = nullptr);

} // namespace mcfi

#endif // MCFI_CTYPES_TYPEPARSER_H
