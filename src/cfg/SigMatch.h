//===- cfg/SigMatch.h - Canonical function-signature matching ---*- C++ -*-===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Matching over *canonical type signatures* (ctypes'
/// TypeContext::canonicalSignature strings). Auxiliary info carries type
/// signatures as strings so that modules compiled against different
/// TypeContexts can be linked; the CFG generator therefore needs
/// string-level signature matching, including the paper's
/// variable-argument rule (Sec. 6): a variadic function-pointer type may
/// invoke any function whose return type matches and whose parameters
/// extend the pointer's fixed parameter list.
///
//===----------------------------------------------------------------------===//

#ifndef MCFI_CFG_SIGMATCH_H
#define MCFI_CFG_SIGMATCH_H

#include <string>
#include <string_view>
#include <vector>

namespace mcfi {

/// A canonical function signature split into parts.
struct FnSigParts {
  std::vector<std::string> Params;
  bool Variadic = false;
  std::string Ret;
};

/// Splits a canonical function signature of the form
/// "(<p1>,<p2>,...[...])-><ret>". Returns false if \p Sig is not a
/// canonical function signature.
bool splitFnSig(std::string_view Sig, FnSigParts &Out);

/// Returns true if a function with canonical signature \p CalleeSig may
/// be invoked through a pointer with canonical signature \p PointerSig
/// that is (\p PointerVariadic ? variadic : exact). Implements exact
/// structural matching plus the variadic fixed-prefix rule.
bool calleeSigMatches(const std::string &PointerSig, bool PointerVariadic,
                      const std::string &CalleeSig);

} // namespace mcfi

#endif // MCFI_CFG_SIGMATCH_H
