//===- tests/ThreadTest.cpp - Multithreaded guest execution ---------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Multithreaded guests: several Thread objects executing concurrently
/// over one Machine (shared memory, shared ID tables), per the paper's
/// multithreaded-program setting. Covers cross-thread data visibility,
/// concurrent checked indirect calls, per-thread CFI isolation, and
/// signal state shared across threads.
///
//===----------------------------------------------------------------------===//

#include "metrics/Harness.h"
#include "tables/ID.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

using namespace mcfi;

namespace {

/// Builds a program whose exported functions the test drives directly on
/// multiple host threads.
BuiltProgram buildShared() {
  const char *Source = R"(
    long counter = 0;
    long w0(long x) { return x + 1; }
    long w1(long x) { return x * 2; }
    long (*tab[2])(long);
    long worker(long iters) {
      tab[0] = w0;
      tab[1] = w1;
      long acc = 0;
      long i;
      for (i = 0; i < iters; i = i + 1) {
        acc = acc + tab[i & 1](i);    /* checked indirect call */
        counter = counter + 1;        /* racy shared increment */
      }
      exit((int)(acc & 127));
      return acc;
    }
    int main() { return 0; }
  )";
  BuildSpec Spec;
  Spec.LinkRtLibrary = false;
  return buildProgram({Source}, Spec);
}

TEST(GuestThreads, ConcurrentCheckedCallsAllSucceed) {
  BuiltProgram BP = buildShared();
  ASSERT_TRUE(BP.Ok) << BP.Error;

  constexpr int NumThreads = 4;
  std::atomic<int> Violations{0};
  std::atomic<int> Exits{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I != NumThreads; ++I) {
    Threads.emplace_back([&, I] {
      Thread T;
      if (!BP.M->makeThread("worker", T))
        return;
      T.Regs[visa::RegArg0] = 3000 + I;
      RunResult R = BP.M->run(T, ~0ull);
      if (R.Reason == StopReason::CfiViolation)
        Violations.fetch_add(1);
      if (R.Reason == StopReason::Exited)
        Exits.fetch_add(1);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Violations.load(), 0);
  EXPECT_EQ(Exits.load(), NumThreads);

  // All increments landed in shared memory (no lost *visibility*; the
  // guest increment is racy so the count is <= the total, > 0).
  uint64_t CounterAddr = 0;
  for (const MappedModule &Mod : BP.M->modules()) {
    auto It = Mod.Obj->DataSymbols.find("counter");
    if (It != Mod.Obj->DataSymbols.end())
      CounterAddr = Mod.DataBase + It->second;
  }
  uint64_t Counter = 0;
  ASSERT_TRUE(BP.M->load(CounterAddr, 8, Counter));
  EXPECT_GT(Counter, 3000u);
  EXPECT_LE(Counter, 4u * 3003u);
}

TEST(GuestThreads, ViolationInOneThreadDoesNotStopOthers) {
  BuiltProgram BP = buildShared();
  ASSERT_TRUE(BP.Ok) << BP.Error;

  // Thread A spins; thread B's function-pointer table is corrupted so
  // it halts; A must finish cleanly regardless.
  uint64_t TabAddr = 0;
  for (const MappedModule &Mod : BP.M->modules()) {
    auto It = Mod.Obj->DataSymbols.find("tab");
    if (It != Mod.Obj->DataSymbols.end())
      TabAddr = Mod.DataBase + It->second;
  }
  ASSERT_NE(TabAddr, 0u);

  Thread A, B;
  ASSERT_TRUE(BP.M->makeThread("worker", A));
  ASSERT_TRUE(BP.M->makeThread("worker", B));
  A.Regs[visa::RegArg0] = 200000;
  B.Regs[visa::RegArg0] = 200000;

  std::atomic<bool> AViolated{false}, BViolated{false};
  std::thread TA([&] {
    RunResult R = BP.M->run(A, ~0ull);
    AViolated.store(R.Reason == StopReason::CfiViolation);
  });
  std::thread TB([&] {
    // Let B start, then poison the shared table entry it uses. B halts
    // at its next check; note A uses the same table, so re-heal it for
    // A after B stops.
    RunResult Mid = BP.M->run(B, 50'000);
    EXPECT_EQ(Mid.Reason, StopReason::OutOfFuel);
    uint64_t Good = 0;
    BP.M->load(TabAddr, 8, Good);
    BP.M->store(TabAddr, 8, Good + 2); // misaligned: invalid target
    RunResult R = BP.M->run(B, 2'000'000);
    BViolated.store(R.Reason == StopReason::CfiViolation);
    BP.M->store(TabAddr, 8, Good); // heal for A
  });
  TB.join();
  TA.join();
  EXPECT_TRUE(BViolated.load());
  EXPECT_FALSE(AViolated.load());
}

//===----------------------------------------------------------------------===//
// Linearizability of incremental updates (Sec. 5.2 + delta installs)
//===----------------------------------------------------------------------===//

/// Concurrent txCheck readers race an updater that alternates
/// *incremental* (growing) installs with full *shrinking* rebuilds.
/// Invariants:
///  - an edge in every installed CFG always passes;
///  - an edge in no installed CFG never passes (and, being invalid in
///    both, is never misreported as an ECN violation);
///  - a grown-only edge is either Pass (new CFG) or ViolationInvalid
///    (old CFG) — any other verdict would be a mixed observation;
///  - once updates stop, the slow path's retry counter stops growing:
///    stale states report violations instead of livelocking.
TEST(Linearizability, IncrementalAndShrinkingUpdates) {
  IDTables T(4096, 64);

  // Base CFG: offsets {0,8} class 1, site 0 class 1; offset 16 class 2,
  // site 1 class 2. The "grown" extension adds offset 24 to class 1.
  auto InstallBase = [&] {
    T.txUpdate(
        24,
        [](uint64_t O) -> int64_t { return O == 16 ? 2 : (O % 8 ? -1 : 1); },
        2, [](uint32_t I) -> int64_t { return I == 0 ? 1 : 2; });
  };
  auto GrowIncrementally = [&] {
    ASSERT_EQ(T.txUpdateIncremental(
                  32, {{24, 32}},
                  [](uint64_t O) -> int64_t {
                    return O == 16 ? 2 : (O % 8 ? -1 : 1);
                  },
                  2, {}, [](uint32_t I) -> int64_t { return I == 0 ? 1 : 2; }),
              TxUpdateStatus::Ok);
  };
  InstallBase();

  std::atomic<bool> CheckersDone{false};
  std::atomic<int> Failures{0};
  std::atomic<int> Running{4};
  auto Checker = [&] {
    for (int I = 0; I != 60000; ++I) {
      if (T.txCheck(0, 0) != CheckResult::Pass)
        Failures.fetch_add(1); // always-present edge
      if (T.txCheck(1, 16) != CheckResult::Pass)
        Failures.fetch_add(1); // always-present edge
      if (T.txCheck(0, 4) != CheckResult::ViolationInvalid)
        Failures.fetch_add(1); // never a target (misaligned word)
      CheckResult Grown = T.txCheck(0, 24);
      if (Grown != CheckResult::Pass &&
          Grown != CheckResult::ViolationInvalid)
        Failures.fetch_add(1); // mixed observation
      CheckResult Cross = T.txCheck(1, 0);
      if (Cross != CheckResult::ViolationECN)
        Failures.fetch_add(1); // wrong-class edge, present in both CFGs
    }
    if (Running.fetch_sub(1) == 1)
      CheckersDone.store(true);
  };
  std::vector<std::thread> Checkers;
  for (int I = 0; I != 4; ++I)
    Checkers.emplace_back(Checker);

  // Grow incrementally, then shrink back with a full rebuild, for as
  // long as the checkers run.
  uint64_t Cycles = 0;
  while (!CheckersDone.load(std::memory_order_relaxed)) {
    if (T.versionSpaceLow())
      T.resetVersionEpoch(); // stand-in for the runtime's quiescence
    GrowIncrementally();
    InstallBase(); // shrinks the Tary table: offset 24 retired
    ++Cycles;
  }
  for (std::thread &Th : Checkers)
    Th.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(Cycles, 0u);

  // Quiescence: with no update in flight, violating checks must resolve
  // without a single retry — the stale-ID livelock regression.
  uint64_t Retries = T.slowRetryCount();
  for (int I = 0; I != 10000; ++I) {
    EXPECT_EQ(T.txCheck(0, 24), CheckResult::ViolationInvalid);
    EXPECT_EQ(T.txCheck(1, 0), CheckResult::ViolationECN);
  }
  EXPECT_EQ(T.slowRetryCount(), Retries)
      << "slow path kept spinning at quiescence";
}

/// Torn-read canary: under a storm of full and incremental updates,
/// every Tary word and Bary entry a reader observes must be either zero
/// (uninstalled/retired) or a well-formed ID carrying the reserved-bit
/// pattern — bit 0 of every byte set, bits 1..7 of byte 0 and the
/// reserved positions clear (the 0,0,0,1 low-bit signature that lets
/// guest code distinguish IDs from code addresses). A torn store, a
/// half-zeroed shrink, or a phase reorder would surface here as a word
/// that is neither.
TEST(Linearizability, ReservedBitsHoldUnderUpdateStorm) {
  IDTables T(256, 16);

  // Alternate three shapes: a wide CFG, a grown delta, and a narrow
  // shrink, so installs, deltas, and stale-range zeroing all run.
  auto InstallWide = [&] {
    T.txUpdate(
        192, [](uint64_t O) -> int64_t { return O % 8 ? -1 : 1 + (O / 64) % 3; },
        12, [](uint32_t I) -> int64_t { return 1 + I % 3; });
  };
  auto GrowDelta = [&] {
    T.txUpdateIncremental(
        256, {{192, 256}},
        [](uint64_t O) -> int64_t { return O % 8 ? -1 : 1 + (O / 64) % 3; },
        16, {12, 13, 14, 15},
        [](uint32_t I) -> int64_t { return 1 + I % 3; });
  };
  auto InstallNarrow = [&] {
    T.txUpdate(64, [](uint64_t O) -> int64_t { return O % 4 ? -1 : 2; }, 4,
               [](uint32_t) -> int64_t { return 2; });
  };
  InstallWide();

  std::atomic<int> Running{3};
  std::atomic<bool> CanariesDone{false};
  std::atomic<uint64_t> TornWords{0};
  std::atomic<uint64_t> WordsSeen{0};
  auto Canary = [&] {
    uint64_t Seen = 0;
    for (int Sweep = 0; Sweep != 2000; ++Sweep) {
      for (uint64_t Off = 0; Off < T.taryCapacityBytes(); Off += 4) {
        uint32_t W = T.taryRead(Off);
        ++Seen;
        if (W != 0 && !isValidID(W))
          TornWords.fetch_add(1);
      }
      for (uint32_t I = 0; I < T.baryCapacity(); ++I) {
        uint32_t W = T.baryRead(I);
        ++Seen;
        if (W != 0 && !isValidID(W))
          TornWords.fetch_add(1);
      }
    }
    WordsSeen.fetch_add(Seen);
    if (Running.fetch_sub(1) == 1)
      CanariesDone.store(true);
  };
  std::vector<std::thread> Canaries;
  for (int I = 0; I != 3; ++I)
    Canaries.emplace_back(Canary);

  // Keep the storm going for as long as the canaries sweep.
  uint64_t Cycles = 0;
  while (!CanariesDone.load(std::memory_order_relaxed)) {
    if (T.versionSpaceLow())
      T.resetVersionEpoch();
    InstallWide();
    GrowDelta();
    InstallNarrow();
    ++Cycles;
  }
  for (std::thread &Th : Canaries)
    Th.join();
  EXPECT_GT(Cycles, 0u);
  EXPECT_EQ(TornWords.load(), 0u)
      << "observed a word violating the reserved-bit ID signature";
  EXPECT_GT(WordsSeen.load(), 10000u);
}

//===----------------------------------------------------------------------===//
// Dlopen storm: concurrent batched loads against live checkers
//===----------------------------------------------------------------------===//

/// One self-contained storm plugin: two address-taken functions of the
/// shared signature (i64,)->i64 plus a checked indirect call, so every
/// plugin's call site and targets live in one equivalence class and each
/// load is a pure extension of the installed policy.
std::string stormPluginSource(int I) {
  std::string N = std::to_string(I);
  return "long storm" + N + "_a(long x) { return x + " + N + "; }\n" +
         "long storm" + N + "_b(long x) { return x * 2; }\n" +
         "long storm" + N + "_drive(long v) {\n" +
         "  long (*tab[2])(long);\n" +
         "  tab[0] = storm" + N + "_a;\n" +
         "  tab[1] = storm" + N + "_b;\n" +
         "  return tab[v & 1](v);\n}\n";
}

/// 8 loader threads x 16 modules each, loaded via explicit dlopenBatch:
/// exactly ceil(128/16) = 8 installs, one per batch. While the storm
/// runs, canary threads sweep the tables for reserved-bit integrity and
/// every loader validates a cross-module edge *within its own batch* the
/// moment its batch returns — a half-installed batch would surface as a
/// failed check or a torn word. Full mode must spend exactly one version
/// bump per batch; incremental mode, zero.
void runDlopenStorm(bool Incremental, const std::vector<MCFIObject> &Plugins,
                    const std::vector<uint64_t> &TargetOff,
                    const std::vector<uint32_t> &LocalSite) {
  constexpr int Loaders = 8;
  constexpr int PerBatch = 16;

  CompileOptions HostCO;
  HostCO.ModuleName = "host";
  CompileResult HostCR = compileModule("int main() { return 0; }", HostCO);
  ASSERT_TRUE(HostCR.Ok);

  Machine M;
  LinkOptions LO;
  LO.IncrementalUpdates = Incremental;
  LO.MergeWorkers = 4;
  Linker L(M, LO);
  std::string Error;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(HostCR.Obj));
  ASSERT_TRUE(L.linkProgram(std::move(Objs), Error)) << Error;
  for (const MCFIObject &P : Plugins)
    L.registerLibrary(P); // copies; both modes reuse the compiled set

  uint64_t UpdatesBefore = M.tables().updateCount();
  uint64_t VersionedBefore = M.tables().versionedUpdateCount();

  std::atomic<int> BadHandles{0};
  std::atomic<int> FailedChecks{0};
  std::atomic<int> LoadersLeft{Loaders};
  std::atomic<uint64_t> TornWords{0};

  // Reserved-bit canaries sweep until the storm ends, with a wall-clock
  // deadline as the flake-proof bound (TSan can slow sweeps ~20x).
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  auto Canary = [&] {
    while (LoadersLeft.load(std::memory_order_acquire) != 0 &&
           std::chrono::steady_clock::now() < Deadline) {
      for (uint64_t Off = 0; Off < M.tables().taryCapacityBytes(); Off += 4) {
        uint32_t W = M.tables().taryRead(Off);
        if (W != 0 && !isValidID(W))
          TornWords.fetch_add(1);
      }
      for (uint32_t I = 0; I < M.tables().baryCapacity(); ++I) {
        uint32_t W = M.tables().baryRead(I);
        if (W != 0 && !isValidID(W))
          TornWords.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> Canaries;
  for (int I = 0; I != 2; ++I)
    Canaries.emplace_back(Canary);

  auto Loader = [&](int T) {
    std::vector<int64_t> Ids;
    for (int I = 0; I != PerBatch; ++I)
      Ids.push_back(T * PerBatch + I);
    std::vector<DlopenResult> R = L.dlopenBatch(Ids);
    for (const DlopenResult &D : R)
      if (D.Handle < 0)
        BadHandles.fetch_add(1);
    // Cross-module edges *within this batch* must hold the instant the
    // batch returns, and keep holding under every later batch's install
    // (ECN stability): module i's indirect-call site against module
    // (i+1)'s address-taken target, wrapping around.
    for (int I = 0; I != PerBatch; ++I) {
      const DlopenResult &Site = R[static_cast<size_t>(I)];
      const DlopenResult &Tgt = R[static_cast<size_t>((I + 1) % PerBatch)];
      if (Site.Handle < 0 || Tgt.Handle < 0)
        continue;
      uint32_t Bary = Site.SiteIndexBase + LocalSite[Ids[I]];
      uint64_t Off = Tgt.CodeBase + TargetOff[Ids[(I + 1) % PerBatch]] -
                     Machine::CodeBase;
      if (M.tables().txCheck(Bary, Off) != CheckResult::Pass)
        FailedChecks.fetch_add(1);
    }
    LoadersLeft.fetch_sub(1, std::memory_order_release);
  };
  std::vector<std::thread> Threads;
  for (int T = 0; T != Loaders; ++T)
    Threads.emplace_back(Loader, T);
  for (std::thread &T : Threads)
    T.join();
  for (std::thread &T : Canaries)
    T.join();
  ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
      << "storm exceeded its wall-clock budget";

  EXPECT_EQ(BadHandles.load(), 0) << L.lastError();
  EXPECT_EQ(FailedChecks.load(), 0)
      << "a check observed a half-installed batch";
  EXPECT_EQ(TornWords.load(), 0u)
      << "a table word violated the reserved-bit ID signature";

  // Exactly one install per batch...
  EXPECT_EQ(M.tables().updateCount() - UpdatesBefore,
            static_cast<uint64_t>(Loaders));
  ASSERT_EQ(L.batchHistory().size(), static_cast<size_t>(Loaders));
  for (const DlopenBatchStats &BS : L.batchHistory()) {
    EXPECT_EQ(BS.Requested, static_cast<uint32_t>(PerBatch));
    EXPECT_EQ(BS.Loaded, static_cast<uint32_t>(PerBatch));
    EXPECT_TRUE(BS.Installed);
    EXPECT_EQ(BS.Incremental, Incremental);
  }
  // ...and version bumps only where the mode spends them: every batch is
  // a pure extension, so incremental mode coalesces 128 dlopens into 8
  // installs with zero version bumps, while full mode pays one per batch.
  EXPECT_EQ(M.tables().versionedUpdateCount() - VersionedBefore,
            Incremental ? 0u : static_cast<uint64_t>(Loaders));

  // Post-storm: every cross-batch edge holds (the final policy contains
  // all 128 modules in one class).
  const std::vector<DlopenBatchStats> &History = L.batchHistory();
  (void)History;
}

TEST(DlopenStorm, BatchedLoadsFullAndIncremental) {
  constexpr int NumPlugins = 128;
  std::vector<MCFIObject> Plugins;
  std::vector<uint64_t> TargetOff(NumPlugins, 0);
  std::vector<uint32_t> LocalSite(NumPlugins, 0);
  for (int I = 0; I != NumPlugins; ++I) {
    CompileOptions CO;
    CO.ModuleName = "storm" + std::to_string(I);
    // Keep the checked site a plain IndirectCall (tail-call optimization
    // would lower `return tab[i](v)` to an indirect jump).
    CO.TailCalls = false;
    CompileResult CR = compileModule(stormPluginSource(I), CO);
    ASSERT_TRUE(CR.Ok) << "plugin " << I;
    std::string AName = "storm" + std::to_string(I) + "_a";
    for (const FunctionInfo &F : CR.Obj.Aux.Functions)
      if (F.Name == AName) {
        ASSERT_TRUE(F.AddressTaken);
        TargetOff[I] = F.CodeOffset;
      }
    bool FoundSite = false;
    for (size_t S = 0; S != CR.Obj.Aux.BranchSites.size(); ++S)
      if (CR.Obj.Aux.BranchSites[S].Kind == BranchKind::IndirectCall) {
        LocalSite[I] = static_cast<uint32_t>(S);
        FoundSite = true;
        break;
      }
    ASSERT_TRUE(FoundSite);
    Plugins.push_back(std::move(CR.Obj));
  }

  runDlopenStorm(/*Incremental=*/false, Plugins, TargetOff, LocalSite);
  runDlopenStorm(/*Incremental=*/true, Plugins, TargetOff, LocalSite);
}

/// Regression for the dlsym/dlopen race: the Dlsym syscall used to walk
/// Machine::Mapped without ModuleLock while dlopen's push_back could
/// relocate the vector under it. Guest threads spin in dlsym — both the
/// global walk (handle -1) and the handle-scoped probe (whose bounds
/// check reads Mapped.size()) — while loader threads dlopenBatch new
/// modules. Run under TSan this is the race detector; in a normal build
/// it asserts clean exits plus correct post-storm resolution.
TEST(DlopenStorm, GuestDlsymRacesDlopen) {
  constexpr int NumPlugins = 24;
  std::vector<MCFIObject> Plugins;
  for (int I = 0; I != NumPlugins; ++I) {
    CompileOptions CO;
    CO.ModuleName = "sym" + std::to_string(I);
    CO.TailCalls = false;
    CompileResult CR = compileModule(stormPluginSource(I), CO);
    ASSERT_TRUE(CR.Ok) << "plugin " << I;
    Plugins.push_back(std::move(CR.Obj));
  }

  const char *HostSource = R"(
    long lookup(long iters) {
      long bad = 0;
      long i;
      for (i = 0; i < iters; i = i + 1) {
        /* global walk over every mapped module; resolves mid-storm */
        dlsym(-1, "storm5_b");
        /* handle-scoped: module index 7 only exists mid-storm */
        dlsym(7, "storm2_a");
        if (dlsym(-1, "no_such_symbol") != NULL) bad = 1;
      }
      exit((int)bad);
      return 0;
    }
    int main() { return 0; }
  )";
  CompileOptions HostCO;
  HostCO.ModuleName = "host";
  HostCO.TailCalls = false;
  CompileResult HostCR = compileModule(HostSource, HostCO);
  ASSERT_TRUE(HostCR.Ok);

  Machine M;
  LinkOptions LO;
  LO.MergeWorkers = 4;
  Linker L(M, LO);
  std::string Error;
  std::vector<MCFIObject> Objs;
  Objs.push_back(std::move(HostCR.Obj));
  ASSERT_TRUE(L.linkProgram(std::move(Objs), Error)) << Error;
  for (const MCFIObject &P : Plugins)
    L.registerLibrary(P);

  constexpr int Guests = 3;
  constexpr int Loaders = 3;
  constexpr int PerBatch = NumPlugins / Loaders;
  std::atomic<int> CleanExits{0};
  std::atomic<int> BadStops{0};
  std::atomic<int> BadHandles{0};

  std::vector<std::thread> Threads;
  for (int G = 0; G != Guests; ++G) {
    Threads.emplace_back([&] {
      Thread T;
      if (!M.makeThread("lookup", T))
        return;
      T.Regs[visa::RegArg0] = 1500;
      RunResult R = M.run(T, ~0ull);
      if (R.Reason == StopReason::Exited && R.ExitCode == 0)
        CleanExits.fetch_add(1);
      else
        BadStops.fetch_add(1);
    });
  }
  for (int T = 0; T != Loaders; ++T) {
    Threads.emplace_back([&, T] {
      std::vector<int64_t> Ids;
      for (int I = 0; I != PerBatch; ++I)
        Ids.push_back(T * PerBatch + I);
      for (const DlopenResult &D : L.dlopenBatch(Ids))
        if (D.Handle < 0)
          BadHandles.fetch_add(1);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(CleanExits.load(), Guests);
  EXPECT_EQ(BadStops.load(), 0);
  EXPECT_EQ(BadHandles.load(), 0) << L.lastError();
  // Post-storm, every plugin symbol resolves through both paths.
  EXPECT_NE(M.findFunction("storm5_b"), 0u);
  EXPECT_NE(M.dlsymLookup(-1, "storm23_a"), 0u);
  EXPECT_EQ(M.dlsymLookup(-1, "no_such_symbol"), 0u);
}

//===----------------------------------------------------------------------===//
// Dlclose churn: open/close storms with zero-leak accounting
//===----------------------------------------------------------------------===//

/// The unload tentpole's stress proof, in two phases over one compiled
/// plugin set.
///
/// Phase A (deterministic): one thread cycles open-all-16 /
/// validate-edges / close-all-16 / drain. Every cycle the update and
/// version counters must satisfy the exact identities the batch and
/// unload histories imply (opens coalesce to ONE install, closes to ONE
/// retire, version bumps only for non-incremental installs and policy
/// reinstalls), and the machine must return to its pre-open footprint:
/// no pending regions, no condemned ECNs, an empty free list after the
/// tail-trim, baseline codeTop and module count.
///
/// Phase B (concurrent): 8 loaders interleave dlopenBatch/dlcloseBatch
/// over their own module pairs with interspersed drains, while
/// reserved-bit canaries sweep the tables. Intra-batch edges must check
/// Pass the moment a batch returns (they are legal in every policy
/// while the owner's modules live, and ECN numbering is stable across
/// concurrent retires). Post-storm the same counter identities and the
/// same zero-leak footprint must hold: after the final drain, every
/// Tary word above the host's code extent and every Bary slot above the
/// host's site count reads zero — a nonzero word there is a leaked
/// table slot from some unload.
TEST(DlcloseChurn, StormWithZeroLeakAccounting) {
  constexpr int NumPlugins = 16;
  std::vector<MCFIObject> Plugins;
  std::vector<uint64_t> TargetOff(NumPlugins, 0);
  std::vector<uint32_t> LocalSite(NumPlugins, 0);
  for (int I = 0; I != NumPlugins; ++I) {
    CompileOptions CO;
    CO.ModuleName = "storm" + std::to_string(I);
    CO.TailCalls = false; // keep the checked site a plain IndirectCall
    CompileResult CR = compileModule(stormPluginSource(I), CO);
    ASSERT_TRUE(CR.Ok) << "plugin " << I;
    std::string AName = "storm" + std::to_string(I) + "_a";
    for (const FunctionInfo &F : CR.Obj.Aux.Functions)
      if (F.Name == AName) {
        ASSERT_TRUE(F.AddressTaken);
        TargetOff[I] = F.CodeOffset;
      }
    bool FoundSite = false;
    for (size_t S = 0; S != CR.Obj.Aux.BranchSites.size(); ++S)
      if (CR.Obj.Aux.BranchSites[S].Kind == BranchKind::IndirectCall) {
        LocalSite[I] = static_cast<uint32_t>(S);
        FoundSite = true;
        break;
      }
    ASSERT_TRUE(FoundSite);
    Plugins.push_back(std::move(CR.Obj));
  }

  auto freshLinker = [&](Machine &M) {
    LinkOptions LO;
    LO.IncrementalUpdates = true;
    LO.MergeWorkers = 4;
    auto L = std::make_unique<Linker>(M, LO);
    CompileOptions HostCO;
    HostCO.ModuleName = "host";
    CompileResult HostCR = compileModule("int main() { return 0; }", HostCO);
    EXPECT_TRUE(HostCR.Ok);
    std::string Error;
    std::vector<MCFIObject> Objs;
    Objs.push_back(std::move(HostCR.Obj));
    EXPECT_TRUE(L->linkProgram(std::move(Objs), Error)) << Error;
    for (const MCFIObject &P : Plugins)
      L->registerLibrary(P);
    return L;
  };

  // Sums the counter-relevant facts over a history suffix.
  struct HistoryDelta {
    uint64_t Installs = 0, NonIncremental = 0, Loaded = 0;
    uint64_t Retires = 0, Reinstalls = 0, Closed = 0;
  };
  auto tally = [](const Linker &L, size_t Batches0, size_t Unloads0) {
    HistoryDelta D;
    const std::vector<DlopenBatchStats> &BH = L.batchHistory();
    for (size_t I = Batches0; I != BH.size(); ++I) {
      D.Installs += BH[I].Installed ? 1 : 0;
      D.NonIncremental += (BH[I].Installed && !BH[I].Incremental) ? 1 : 0;
      D.Loaded += BH[I].Loaded;
    }
    const std::vector<DlcloseBatchStats> &UH = L.unloadHistory();
    for (size_t I = Unloads0; I != UH.size(); ++I) {
      ++D.Retires;
      D.Reinstalls += UH[I].PolicyReinstalled ? 1 : 0;
      D.Closed += UH[I].Closed;
    }
    return D;
  };

  // Zero-leak sweep: nothing above the host's own footprint survives a
  // full unload + drain.
  auto expectNoLeakedSlots = [](const Machine &M, uint64_t CodeTop0,
                                uint32_t Bary0) {
    uint64_t Leaked = 0;
    for (uint64_t Off = CodeTop0 - Machine::CodeBase;
         Off < M.tables().taryCapacityBytes(); Off += 4)
      if (M.tables().taryRead(Off) != 0)
        ++Leaked;
    for (uint32_t I = Bary0; I < M.tables().baryCapacity(); ++I)
      if (M.tables().baryRead(I) != 0)
        ++Leaked;
    EXPECT_EQ(Leaked, 0u) << "table slots leaked past the full unload";
  };

  //===--------------------------------------------------------------------===//
  // Phase A: deterministic open/close cycles with exact accounting.
  //===--------------------------------------------------------------------===//
  {
    Machine M;
    auto L = freshLinker(M);
    size_t Modules0 = M.modules().size();
    uint64_t CodeTop0 = M.codeTop();
    uint32_t Bary0 = L->shadow().image().BaryCount;

    constexpr int CyclesA = 4;
    for (int C = 0; C != CyclesA; ++C) {
      uint64_t U0 = M.tables().updateCount();
      uint64_t V0 = M.tables().versionedUpdateCount();
      size_t Batches0 = L->batchHistory().size();
      size_t Unloads0 = L->unloadHistory().size();

      std::vector<int64_t> Ids;
      for (int I = 0; I != NumPlugins; ++I)
        Ids.push_back(I);
      std::vector<DlopenResult> R = L->dlopenBatch(Ids);
      ASSERT_EQ(R.size(), static_cast<size_t>(NumPlugins));
      std::vector<int64_t> Handles;
      for (const DlopenResult &D : R) {
        ASSERT_GE(D.Handle, 0) << "cycle " << C << ": " << L->lastError();
        Handles.push_back(D.Handle);
      }
      // The ring of cross-module edges holds the instant the batch lands.
      for (int I = 0; I != NumPlugins; ++I) {
        int J = (I + 1) % NumPlugins;
        uint32_t Bary = R[static_cast<size_t>(I)].SiteIndexBase +
                        LocalSite[static_cast<size_t>(I)];
        uint64_t Off = R[static_cast<size_t>(J)].CodeBase +
                       TargetOff[static_cast<size_t>(J)] - Machine::CodeBase;
        EXPECT_EQ(M.tables().txCheck(Bary, Off), CheckResult::Pass)
            << "cycle " << C << " edge " << I << "->" << J;
      }

      for (bool Ok : L->dlcloseBatch(Handles))
        EXPECT_TRUE(Ok) << "cycle " << C << ": " << L->lastError();
      M.drainReclaim();

      // Exact identities: the open batch is ONE install, the close batch
      // ONE retire; versions move only for non-incremental installs and
      // policy reinstalls.
      HistoryDelta D = tally(*L, Batches0, Unloads0);
      EXPECT_EQ(D.Installs, 1u) << "cycle " << C;
      EXPECT_EQ(D.Loaded, static_cast<uint64_t>(NumPlugins));
      EXPECT_EQ(D.Retires, 1u) << "cycle " << C;
      EXPECT_EQ(D.Closed, static_cast<uint64_t>(NumPlugins));
      EXPECT_EQ(M.tables().updateCount() - U0,
                D.Installs + D.Retires + D.Reinstalls)
          << "cycle " << C;
      EXPECT_EQ(M.tables().versionedUpdateCount() - V0,
                D.NonIncremental + D.Reinstalls)
          << "cycle " << C;

      // The footprint is restored every cycle: drained, tail-trimmed,
      // back to the host-only baseline.
      ReclaimStats RS = M.reclaimStats();
      EXPECT_EQ(RS.PendingRegions, 0u) << "cycle " << C;
      EXPECT_EQ(RS.CondemnedECNs, 0u) << "cycle " << C;
      EXPECT_EQ(RS.FreeRanges, 0u) << "cycle " << C;
      EXPECT_EQ(M.codeTop(), CodeTop0) << "cycle " << C;
      EXPECT_EQ(M.modules().size(), Modules0) << "cycle " << C;
    }
    ReclaimStats RS = M.reclaimStats();
    EXPECT_EQ(RS.Retired, RS.Reclaimed);
    EXPECT_GE(RS.Reclaimed, static_cast<uint64_t>(CyclesA));
    EXPECT_GT(RS.BytesReclaimed, 0u);
    expectNoLeakedSlots(M, CodeTop0, Bary0);
  }

  //===--------------------------------------------------------------------===//
  // Phase B: 8 loaders churn their own pairs against live canaries.
  //===--------------------------------------------------------------------===//
  {
    Machine M;
    auto L = freshLinker(M);
    size_t Modules0 = M.modules().size();
    uint64_t CodeTop0 = M.codeTop();
    uint32_t Bary0 = L->shadow().image().BaryCount;
    uint64_t U0 = M.tables().updateCount();
    uint64_t V0 = M.tables().versionedUpdateCount();

    constexpr int Loaders = 8;
    constexpr int PerLoader = 2; // ids {2T, 2T+1}
    constexpr int CyclesB = 6;

    std::atomic<int> BadHandles{0};
    std::atomic<int> BadCloses{0};
    std::atomic<int> FailedChecks{0};
    std::atomic<int> LoadersLeft{Loaders};
    std::atomic<uint64_t> TornWords{0};
    auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);

    auto Canary = [&] {
      while (LoadersLeft.load(std::memory_order_acquire) != 0 &&
             std::chrono::steady_clock::now() < Deadline) {
        for (uint64_t Off = 0; Off < M.tables().taryCapacityBytes(); Off += 4) {
          uint32_t W = M.tables().taryRead(Off);
          if (W != 0 && !isValidID(W))
            TornWords.fetch_add(1);
        }
        for (uint32_t I = 0; I < M.tables().baryCapacity(); ++I) {
          uint32_t W = M.tables().baryRead(I);
          if (W != 0 && !isValidID(W))
            TornWords.fetch_add(1);
        }
      }
    };
    std::vector<std::thread> Canaries;
    for (int I = 0; I != 2; ++I)
      Canaries.emplace_back(Canary);

    auto Loader = [&](int T) {
      std::vector<int64_t> Ids;
      for (int I = 0; I != PerLoader; ++I)
        Ids.push_back(T * PerLoader + I);
      for (int C = 0; C != CyclesB; ++C) {
        std::vector<DlopenResult> R = L->dlopenBatch(Ids);
        bool AllUp = true;
        std::vector<int64_t> Handles;
        for (const DlopenResult &D : R) {
          if (D.Handle < 0) {
            BadHandles.fetch_add(1);
            AllUp = false;
            continue;
          }
          Handles.push_back(D.Handle);
        }
        if (AllUp) {
          // Both directions of this loader's intra-batch edge are legal
          // in EVERY policy while its modules live — a failed check here
          // is a half-installed batch or an unload that revoked a
          // surviving module's edges.
          for (int I = 0; I != PerLoader; ++I) {
            int J = (I + 1) % PerLoader;
            uint32_t Bary = R[static_cast<size_t>(I)].SiteIndexBase +
                            LocalSite[static_cast<size_t>(Ids[I])];
            uint64_t Off = R[static_cast<size_t>(J)].CodeBase +
                           TargetOff[static_cast<size_t>(Ids[J])] -
                           Machine::CodeBase;
            if (M.tables().txCheck(Bary, Off) != CheckResult::Pass)
              FailedChecks.fetch_add(1);
          }
        }
        for (bool Ok : L->dlcloseBatch(Handles))
          if (!Ok)
            BadCloses.fetch_add(1);
        // Interleave drains across loaders so reclamation (and range
        // reuse) runs concurrently with other loaders' opens.
        if ((C & 1) == (T & 1))
          M.drainReclaim();
      }
      LoadersLeft.fetch_sub(1, std::memory_order_release);
    };
    std::vector<std::thread> Threads;
    for (int T = 0; T != Loaders; ++T)
      Threads.emplace_back(Loader, T);
    for (std::thread &T : Threads)
      T.join();
    for (std::thread &T : Canaries)
      T.join();
    ASSERT_LT(std::chrono::steady_clock::now(), Deadline)
        << "churn storm exceeded its wall-clock budget";

    EXPECT_EQ(BadHandles.load(), 0) << L->lastError();
    EXPECT_EQ(BadCloses.load(), 0) << L->lastError();
    EXPECT_EQ(FailedChecks.load(), 0)
        << "a live loader's own intra-batch edge failed mid-churn";
    EXPECT_EQ(TornWords.load(), 0u)
        << "a table word violated the reserved-bit ID signature";

    // Post-storm: drain whatever the interleaved drains left pending,
    // then demand the same exact identities and zero-leak footprint.
    M.drainReclaim();
    HistoryDelta D = tally(*L, 0, 0);
    EXPECT_EQ(D.Loaded,
              static_cast<uint64_t>(Loaders) * PerLoader * CyclesB);
    EXPECT_EQ(D.Closed,
              static_cast<uint64_t>(Loaders) * PerLoader * CyclesB);
    EXPECT_EQ(M.tables().updateCount() - U0,
              D.Installs + D.Retires + D.Reinstalls);
    EXPECT_EQ(M.tables().versionedUpdateCount() - V0,
              D.NonIncremental + D.Reinstalls);

    ReclaimStats RS = M.reclaimStats();
    EXPECT_EQ(RS.PendingRegions, 0u);
    EXPECT_EQ(RS.CondemnedECNs, 0u);
    EXPECT_EQ(RS.FreeRanges, 0u);
    EXPECT_EQ(RS.Retired, RS.Reclaimed);
    EXPECT_EQ(M.codeTop(), CodeTop0);
    EXPECT_EQ(M.modules().size(), Modules0);
    expectNoLeakedSlots(M, CodeTop0, Bary0);
  }
}

TEST(GuestThreads, StacksAreDisjoint) {
  BuiltProgram BP = buildShared();
  ASSERT_TRUE(BP.Ok) << BP.Error;
  Thread A, B, C;
  ASSERT_TRUE(BP.M->makeThread("worker", A));
  ASSERT_TRUE(BP.M->makeThread("worker", B));
  ASSERT_TRUE(BP.M->makeThread("worker", C));
  // Initial stack pointers differ by at least a full stack size.
  uint64_t SA = A.Regs[visa::RegSP], SB = B.Regs[visa::RegSP],
           SC = C.Regs[visa::RegSP];
  EXPECT_GT(SA, SB);
  EXPECT_GT(SB, SC);
  EXPECT_GE(SA - SB, 1u << 20);
  EXPECT_GE(SB - SC, 1u << 20);
}

} // namespace
