//===- absint/AbsInt.cpp - Semantic CFI/SFI proof engine ------------------===//
//
// Part of the MCFI reproduction of "Modular Control-Flow Integrity"
// (Niu & Tan, PLDI 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/AbsInt.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace mcfi;
using namespace mcfi::visa;
using namespace mcfi::absint;

namespace {

unsigned long long hex(uint64_t V) {
  return static_cast<unsigned long long>(V);
}

/// Deterministic token mints. Transfer-time tokens live in the low space
/// (block << 32 | counter); join re-mints, widening snaps, and entry
/// seeds each get a tagged space of their own so no two sources can ever
/// collide.
uint64_t transferBase(uint32_t Blk) { return uint64_t(Blk) << 32; }
uint64_t joinTok(uint32_t Blk, unsigned Slot) {
  return (1ull << 63) | (uint64_t(Blk) << 32) | Slot;
}
uint64_t entryTok(uint32_t Blk, unsigned Slot) {
  return (1ull << 62) | (uint64_t(Blk) << 32) | Slot;
}
uint64_t widenTok(uint32_t Blk, unsigned Slot) {
  return (1ull << 61) | (uint64_t(Blk) << 32) | Slot;
}

struct Minter {
  uint64_t Base;
  uint64_t Ctr = 1;
  explicit Minter(uint32_t Blk) : Base(transferBase(Blk)) {}
  uint64_t mint() { return Base | Ctr++; }
};

/// Kinds whose Ref field names another value (and must be killed when
/// that value's token is redefined).
bool refBearing(VK K) {
  switch (K) {
  case VK::TargetID:
  case VK::DiffFull:
  case VK::ValidBit:
  case VK::DiffVer:
  case VK::BoundsFlag:
    return true;
  default:
    return false;
  }
}

struct Block {
  uint64_t Begin = 0;
  uint64_t End = 0;     ///< one past the last instruction byte
  uint64_t LastOff = 0; ///< offset of the last instruction
  /// The bytes after End are not an instruction boundary (jump-table
  /// data or end of module): there is no fall-through successor.
  bool FallsOff = false;
};

enum class EdgeKind : uint8_t { Fall, Jump, CondTaken, CondFall };

class Engine {
public:
  Engine(const uint8_t *Code, size_t Size, const MCFIObject &Obj,
         const std::map<uint64_t, Instr> &Instrs, const AbsIntOptions &Opts)
      : Code(Code), Size(Size), Obj(Obj), Instrs(Instrs), Opts(Opts) {
    (void)this->Code;
  }

  SemanticResult run() {
    indexAux();
    buildBlocks();
    Result.Blocks = Blocks.size();
    if (!runFixpoint())
      return std::move(Result); // non-convergence is a reject
    finalPass();
    checkAllSitesProven();
    if (Opts.CollectBlockDump)
      dump();
    return std::move(Result);
  }

private:
  void error(const std::string &Msg) {
    Result.Ok = false;
    Result.Errors.push_back(Msg);
  }

  //===------------------------------------------------------------------===//
  // Aux indexing and CFG recovery
  //===------------------------------------------------------------------===//

  void indexAux() {
    for (size_t I = 0; I != Obj.Aux.BranchSites.size(); ++I)
      SiteAt.emplace(Obj.Aux.BranchSites[I].BranchOffset,
                     static_cast<uint32_t>(I));
    for (const JumpTableInfo &JT : Obj.Aux.JumpTables) {
      JTAt.emplace(JT.JmpOffset, &JT);
      TableOffsets.insert(JT.TableOffset);
    }
    for (const RelocEntry &RE : Obj.Relocs)
      RelocAt.emplace(RE.Offset, &RE);
  }

  bool boundary(uint64_t Off) const { return Instrs.count(Off) != 0; }

  static bool endsBlock(Opcode Op) {
    switch (Op) {
    case Opcode::Jmp:
    case Opcode::Jz:
    case Opcode::Jnz:
    case Opcode::JmpInd:
    case Opcode::Ret:
    case Opcode::Halt:
      return true;
    default:
      return false;
    }
  }

  void buildBlocks() {
    // Analysis roots: every offset where control can materialize with an
    // arbitrary machine state — function entries (direct and indirect
    // calls from other modules, signal handlers), return sites (return
    // dispatches, longjmp), and intra-module direct-call targets.
    std::set<uint64_t> RootSet;
    for (const FunctionInfo &F : Obj.Aux.Functions) {
      if (boundary(F.CodeOffset))
        RootSet.insert(F.CodeOffset);
      else
        error(formatString("function '%s' entry 0x%llx is not an "
                           "instruction boundary",
                           F.Name.c_str(), hex(F.CodeOffset)));
    }
    for (const CallSiteInfo &CS : Obj.Aux.CallSites) {
      if (boundary(CS.RetSiteOffset))
        RootSet.insert(CS.RetSiteOffset);
      else
        error(formatString("return site 0x%llx is not an instruction "
                           "boundary",
                           hex(CS.RetSiteOffset)));
    }
    // Declared check sequences are roots as well: the transaction proves
    // its dispatch from a completely unknown entry state (that is its
    // whole point), and a sequence in dead code — an epilogue behind an
    // unconditional tail call, say — must still be provable rather than
    // flagged as never reached.
    for (const BranchSite &BS : Obj.Aux.BranchSites)
      if (boundary(BS.SeqStart))
        RootSet.insert(BS.SeqStart);

    // Leaders: roots, direct-branch targets, and declared jump-table
    // targets. (Direct-branch targets are *not* roots: they are reached
    // through CFG edges with the flowing state, which is what makes
    // check-pass edges provable.)
    std::set<uint64_t> Leaders = RootSet;
    for (const auto &[Off, I] : Instrs) {
      switch (I.Op) {
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Call: {
        uint64_t T = Off + I.Length + static_cast<int64_t>(I.Off);
        if (T < Size && boundary(T)) {
          Leaders.insert(T);
          if (I.Op == Opcode::Call)
            RootSet.insert(T);
        }
        break;
      }
      default:
        break;
      }
    }
    for (const JumpTableInfo &JT : Obj.Aux.JumpTables)
      for (uint64_t T : JT.Targets)
        if (T < Size && boundary(T))
          Leaders.insert(T);

    // Partition the disassembly into maximal blocks.
    uint64_t Begin = ~0ull;
    for (auto It = Instrs.begin(); It != Instrs.end(); ++It) {
      uint64_t Off = It->first;
      const Instr &I = It->second;
      if (Begin == ~0ull)
        Begin = Off;
      uint64_t Next = Off + I.Length;
      auto NextIt = std::next(It);
      bool Contig = NextIt != Instrs.end() && NextIt->first == Next;
      if (!endsBlock(I.Op) && Contig && !Leaders.count(Next))
        continue;
      Block B;
      B.Begin = Begin;
      B.End = Next;
      B.LastOff = Off;
      B.FallsOff = !Contig;
      BlockAt.emplace(Begin, static_cast<uint32_t>(Blocks.size()));
      Blocks.push_back(B);
      Begin = ~0ull;
    }

    // Static successor edges.
    Succs.resize(Blocks.size());
    for (uint32_t BI = 0; BI != Blocks.size(); ++BI) {
      const Block &B = Blocks[BI];
      const Instr &Last = Instrs.at(B.LastOff);
      auto addEdge = [&](uint64_t T, EdgeKind K) {
        auto It = BlockAt.find(T);
        if (It != BlockAt.end())
          Succs[BI].emplace_back(It->second, K);
      };
      uint64_t T = B.LastOff + Last.Length + static_cast<int64_t>(Last.Off);
      switch (Last.Op) {
      case Opcode::Jmp:
        if (T < Size)
          addEdge(T, EdgeKind::Jump);
        break;
      case Opcode::Jz:
      case Opcode::Jnz:
        if (T < Size)
          addEdge(T, EdgeKind::CondTaken);
        if (!B.FallsOff)
          addEdge(B.End, EdgeKind::CondFall);
        break;
      case Opcode::JmpInd:
        // A declared jump-table dispatch has statically known targets;
        // a checked dispatch targets some declared IBT, which is an
        // analysis root of its own.
        if (auto It = JTAt.find(B.LastOff); It != JTAt.end())
          for (uint64_t JT : It->second->Targets)
            addEdge(JT, EdgeKind::Jump);
        break;
      case Opcode::Ret:
      case Opcode::Halt:
        break;
      default:
        if (!B.FallsOff)
          addEdge(B.End, EdgeKind::Fall);
        break;
      }
    }

    for (uint64_t R : RootSet)
      if (auto It = BlockAt.find(R); It != BlockAt.end())
        Roots.push_back(It->second);
    std::sort(Roots.begin(), Roots.end());
    Roots.erase(std::unique(Roots.begin(), Roots.end()), Roots.end());
    Result.Entries = Roots.size();
  }

  //===------------------------------------------------------------------===//
  // Transfer functions
  //===------------------------------------------------------------------===//

  void killTok(AbsState &S, uint64_t T, unsigned ExceptReg, Minter &M) {
    for (unsigned R = 0; R != NumRegs; ++R) {
      if (R == ExceptReg)
        continue;
      AbsVal &O = S.Regs[R];
      if (O.Tok == T || (refBearing(O.K) && O.Ref == T))
        O = AbsVal::top(M.mint());
    }
    for (auto &[K, O] : S.Stack) {
      (void)K;
      if (O.Tok == T || (refBearing(O.K) && O.Ref == T))
        O = AbsVal::top(M.mint());
    }
  }

  /// Writes \p V to register \p R. FreshDef means V's token was minted by
  /// this instruction: any other location still carrying that token (a
  /// loop-carried value from a previous iteration of this block) holds a
  /// *different* runtime value now and is demoted, as is every relational
  /// fact about it.
  void setReg(AbsState &S, unsigned R, const AbsVal &V, bool FreshDef,
              Minter &M) {
    if (FreshDef)
      killTok(S, V.Tok, R, M);
    S.Regs[R] = V;
  }

  void havocRegs(AbsState &S, Minter &M) {
    for (unsigned R = 0; R != NumRegs; ++R)
      S.Regs[R] = AbsVal::top(M.mint());
  }

  /// Error sink for the final (collection) pass; null during fixpoint.
  struct Collector {
    Engine &E;
    uint32_t BlockIdx;
  };

  void transferInstr(AbsState &S, uint64_t Off, const Instr &I, Minter &M,
                     Collector *C) {
    switch (I.Op) {
    case Opcode::MovImm: {
      AbsVal V;
      if (auto It = RelocAt.find(Off + 2); It != RelocAt.end()) {
        const RelocEntry *RE = It->second;
        if (RE->Kind == RelocKind::CodeAddr64 &&
            TableOffsets.count(RE->Addend))
          V = {VK::TableBase, M.mint(), 0, RE->Addend, NoSite};
        else
          V = AbsVal::top(M.mint()); // runtime-patched absolute address
      } else {
        V = AbsVal::constant(M.mint(), I.Imm);
      }
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::Mov:
      setReg(S, I.Rd, S.Regs[I.Ra], false, M);
      break;
    case Opcode::AndImm: {
      const AbsVal Cur = S.Regs[I.Rd];
      if (I.Imm == 0xffffffffull && maskedIsh(Cur))
        break; // the mask is the identity on an already-sandboxed value
      AbsVal V;
      if (I.Imm == 0xffffull && Cur.K == VK::DiffFull)
        V = {VK::DiffVer, M.mint(), Cur.Ref, 0, Cur.Site};
      else if (I.Imm <= 0xffffffffull)
        V = AbsVal::masked(M.mint());
      else
        V = AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::AddImm: {
      if (I.Rd == RegSP) {
        if (S.SpKnown) {
          int64_t Old = S.SpDelta;
          S.SpDelta += I.Off;
          // Slots below the stack pointer are dead; slots inside a fresh
          // allocation hold garbage. Either way the facts are gone.
          S.Stack.erase(
              std::remove_if(S.Stack.begin(), S.Stack.end(),
                             [&](const auto &P) {
                               return P.first < std::max(Old, S.SpDelta) &&
                                      P.first >= std::min(Old, S.SpDelta);
                             }),
              S.Stack.end());
          if (I.Off > 0)
            S.Stack.erase(std::remove_if(S.Stack.begin(), S.Stack.end(),
                                         [&](const auto &P) {
                                           return P.first < S.SpDelta;
                                         }),
                          S.Stack.end());
        }
        break;
      }
      const AbsVal Cur = S.Regs[I.Rd];
      AbsVal V = Cur.K == VK::Const
                     ? AbsVal::constant(
                           M.mint(), Cur.Aux + static_cast<int64_t>(I.Off))
                     : AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::Load: {
      if (I.Ra == RegSP && S.SpKnown) {
        if (const AbsVal *Slot = S.slot(S.SpDelta + I.Off)) {
          setReg(S, I.Rd, *Slot, false, M);
          break;
        }
        setReg(S, I.Rd, AbsVal::top(M.mint()), true, M);
        break;
      }
      const AbsVal Base = S.Regs[I.Ra];
      AbsVal V = Base.K == VK::TableSlot && I.Off == 0
                     ? AbsVal{VK::JTTarget, M.mint(), 0, Base.Aux, Base.Site}
                     : AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::Load8:
    case Opcode::Load16:
    case Opcode::Load32:
      setReg(S, I.Rd, AbsVal::masked(M.mint()), true, M); // zero-extended
      break;
    case Opcode::Store:
    case Opcode::Store8:
    case Opcode::Store16:
    case Opcode::Store32: {
      if (I.Rd == RegSP) {
        if (S.SpKnown) {
          int64_t Key = S.SpDelta + I.Off;
          if (I.Op == Opcode::Store)
            S.setSlot(Key, S.Regs[I.Ra]);
          else
            S.dropSlot(Key); // partial overwrite invalidates the fact
        }
        break;
      }
      if (C && !maskedIsh(S.Regs[I.Rd]))
        violation(*C, Off,
                  formatString("unproven store at 0x%llx: %s; address r%u "
                               "= %s on some path",
                               hex(Off), printInstr(I).c_str(),
                               unsigned(I.Rd),
                               printVal(S.Regs[I.Rd]).c_str()));
      // A sandboxed store may still hit the stack region: spilled facts
      // are no longer trustworthy.
      S.havocStack();
      break;
    }
    case Opcode::Add: {
      const AbsVal A = S.Regs[I.Ra], B = S.Regs[I.Rb];
      AbsVal V = AbsVal::top(M.mint());
      const AbsVal *TB = A.K == VK::TableBase ? &A
                         : B.K == VK::TableBase ? &B
                                                : nullptr;
      const AbsVal *SC = A.K == VK::ScaledIdx ? &A
                         : B.K == VK::ScaledIdx ? &B
                                                : nullptr;
      if (TB && SC && SC->Aux <= 0xffffffffull)
        V = {VK::TableSlot, M.mint(), 0, TB->Aux,
             static_cast<uint32_t>(SC->Aux)};
      else if (A.K == VK::Const && B.K == VK::Const)
        V = AbsVal::constant(M.mint(), A.Aux + B.Aux);
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::Sub: {
      const AbsVal A = S.Regs[I.Ra], B = S.Regs[I.Rb];
      AbsVal V = A.K == VK::Const && B.K == VK::Const
                     ? AbsVal::constant(M.mint(), A.Aux - B.Aux)
                     : AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::And: {
      const AbsVal A = S.Regs[I.Ra], B = S.Regs[I.Rb];
      AbsVal V;
      if (A.K == VK::Const && A.Aux == 1 && B.K == VK::TargetID)
        V = {VK::ValidBit, M.mint(), B.Ref, 0, NoSite};
      else if (B.K == VK::Const && B.Aux == 1 && A.K == VK::TargetID)
        V = {VK::ValidBit, M.mint(), A.Ref, 0, NoSite};
      else if (maskedIsh(A) || maskedIsh(B))
        V = AbsVal::masked(M.mint()); // and() cannot exceed either operand
      else
        V = AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::Xor: {
      const AbsVal A = S.Regs[I.Ra], B = S.Regs[I.Rb];
      const AbsVal *BID = A.K == VK::BranchID ? &A
                          : B.K == VK::BranchID ? &B
                                                : nullptr;
      const AbsVal *TID = A.K == VK::TargetID ? &A
                          : B.K == VK::TargetID ? &B
                                                : nullptr;
      AbsVal V;
      if (BID && TID)
        V = {VK::DiffFull, M.mint(), TID->Ref, 0, BID->Site};
      else if (maskedIsh(A) && maskedIsh(B))
        V = AbsVal::masked(M.mint());
      else
        V = AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::Shl: {
      const AbsVal A = S.Regs[I.Ra], B = S.Regs[I.Rb];
      AbsVal V = A.K == VK::BoundedIdx && B.K == VK::Const && B.Aux == 3
                     ? AbsVal{VK::ScaledIdx, M.mint(), 0, A.Aux, NoSite}
                     : AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::CmpLtU: {
      const AbsVal A = S.Regs[I.Ra], B = S.Regs[I.Rb];
      AbsVal V = B.K == VK::Const
                     ? AbsVal{VK::BoundsFlag, M.mint(), A.Tok, B.Aux, NoSite}
                     : AbsVal::masked(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLtS:
    case Opcode::CmpLeS:
    case Opcode::CmpLeU:
      setReg(S, I.Rd, AbsVal::masked(M.mint()), true, M); // 0 or 1
      break;
    case Opcode::Mul:
    case Opcode::DivS:
    case Opcode::ModS:
    case Opcode::Or:
    case Opcode::ShrL:
    case Opcode::ShrA:
      setReg(S, I.Rd, AbsVal::top(M.mint()), true, M);
      break;
    case Opcode::Neg:
    case Opcode::Not:
      setReg(S, I.Rd, AbsVal::top(M.mint()), true, M);
      break;
    case Opcode::TableRead: {
      const AbsVal A = S.Regs[I.Ra];
      AbsVal V = maskedIsh(A)
                     ? AbsVal{VK::TargetID, M.mint(), A.Tok, 0, NoSite}
                     : AbsVal::top(M.mint());
      setReg(S, I.Rd, V, true, M);
      break;
    }
    case Opcode::BaryRead: {
      uint32_t Site = NoSite;
      if (auto It = RelocAt.find(Off + 2);
          It != RelocAt.end() && It->second->Kind == RelocKind::BaryIndex32)
        Site = It->second->SiteId;
      setReg(S, I.Rd, {VK::BranchID, M.mint(), 0, 0, Site}, true, M);
      break;
    }
    case Opcode::Push:
      if (S.SpKnown) {
        S.SpDelta -= 8;
        S.setSlot(S.SpDelta, S.Regs[I.Ra]);
      }
      break;
    case Opcode::Pop: {
      AbsVal V = AbsVal::top(M.mint());
      bool Fresh = true;
      if (S.SpKnown) {
        if (const AbsVal *Slot = S.slot(S.SpDelta)) {
          V = *Slot;
          Fresh = false;
        }
        S.dropSlot(S.SpDelta);
        S.SpDelta += 8;
      }
      setReg(S, I.Rd, V, Fresh, M);
      break;
    }
    case Opcode::Syscall:
      setReg(S, RegRet, AbsVal::top(M.mint()), true, M);
      S.havocStack(); // runtime services may write guest memory
      break;
    case Opcode::Call:
      havocRegs(S, M);
      S.havocStack(); // callee owns the frame while we are suspended
      break;
    case Opcode::CallInd:
      if (C)
        checkDispatch(S, Off, I, *C);
      havocRegs(S, M);
      S.havocStack();
      break;
    case Opcode::JmpInd:
      if (C)
        checkDispatch(S, Off, I, *C);
      break;
    case Opcode::Ret:
      if (C)
        violation(*C, Off,
                  formatString("bare ret at 0x%llx reaches execution",
                               hex(Off)));
      break;
    case Opcode::Jmp:
    case Opcode::Jz:
    case Opcode::Jnz:
    case Opcode::Nop:
    case Opcode::Halt:
    case Opcode::Invalid:
      break;
    }
  }

  /// Path-sensitive refinement on a conditional edge: \p Cond is the
  /// tested register's value, \p IsZero whether this edge is the cond==0
  /// side.
  void refine(AbsState &S, const AbsVal &Cond, bool IsZero) {
    auto eachLoc = [&](auto &&F) {
      for (unsigned R = 0; R != NumRegs; ++R)
        F(S.Regs[R]);
      for (auto &[K, V] : S.Stack) {
        (void)K;
        F(V);
      }
    };
    if (Cond.K == VK::DiffFull && IsZero) {
      // Bary ID == Tary ID for the value named Cond.Ref: every live copy
      // of that value is now checked for Cond's branch site.
      eachLoc([&](AbsVal &V) {
        if (V.Tok == Cond.Ref && maskedIsh(V))
          V = {VK::Checked, V.Tok, 0, 0, Cond.Site};
      });
    } else if (Cond.K == VK::BoundsFlag && !IsZero &&
               Cond.Aux <= 0xffffffffull) {
      eachLoc([&](AbsVal &V) {
        if (V.Tok == Cond.Ref)
          V = {VK::BoundedIdx, V.Tok, 0, Cond.Aux, NoSite};
      });
    }
  }

  //===------------------------------------------------------------------===//
  // Invariant checks (final pass)
  //===------------------------------------------------------------------===//

  std::string witness(uint32_t BlockIdx) const {
    std::vector<uint64_t> Path;
    for (int32_t B = static_cast<int32_t>(BlockIdx);
         B >= 0 && Path.size() < 64; B = Pred[B])
      Path.push_back(Blocks[B].Begin);
    std::reverse(Path.begin(), Path.end());
    std::string S = "; path:";
    size_t First = Path.size() > 12 ? Path.size() - 12 : 0;
    if (First)
      S += " ...";
    for (size_t I = First; I != Path.size(); ++I)
      S += formatString(" 0x%llx", hex(Path[I]));
    return S;
  }

  void violation(Collector &C, uint64_t Off, const std::string &Msg) {
    (void)Off;
    error(Msg + witness(C.BlockIdx));
  }

  void checkDispatch(AbsState &S, uint64_t Off, const Instr &I,
                     Collector &C) {
    const AbsVal &V = S.Regs[I.Ra];
    if (auto It = JTAt.find(Off); It != JTAt.end()) {
      const JumpTableInfo *JT = It->second;
      if (V.K == VK::JTTarget && V.Aux == JT->TableOffset &&
          V.Site <= JT->Targets.size()) {
        Proven[Off] = true;
        return;
      }
      Proven.emplace(Off, false);
      violation(C, Off,
                formatString("jump-table dispatch at 0x%llx not dominated "
                             "by an in-bounds table load: r%u = %s",
                             hex(Off), unsigned(I.Ra),
                             printVal(V).c_str()));
      return;
    }
    auto It = SiteAt.find(Off);
    if (It == SiteAt.end()) {
      violation(C, Off,
                formatString("indirect branch at 0x%llx has no declared "
                             "branch site",
                             hex(Off)));
      return;
    }
    if (V.K == VK::Checked && V.Site == It->second) {
      Proven[Off] = true;
      return;
    }
    Proven.emplace(Off, false);
    violation(C, Off,
              formatString("dispatch at 0x%llx not proven: r%u = %s, "
                           "needs an unbroken check for site %u",
                           hex(Off), unsigned(I.Ra), printVal(V).c_str(),
                           unsigned(It->second)));
  }

  void checkAllSitesProven() {
    // A declared site whose dispatch the fixpoint never reached (or
    // never reached with a provable state) is a lie in the aux info or
    // dead instrumentation; both void the module's safety story.
    for (const BranchSite &BS : Obj.Aux.BranchSites) {
      auto It = Proven.find(BS.BranchOffset);
      if (It == Proven.end())
        error(formatString("declared branch site at 0x%llx: dispatch "
                           "never reached by the analysis",
                           hex(BS.BranchOffset)));
    }
    for (const JumpTableInfo &JT : Obj.Aux.JumpTables) {
      auto It = Proven.find(JT.JmpOffset);
      if (It == Proven.end())
        error(formatString("declared jump table at 0x%llx: dispatch "
                           "never reached by the analysis",
                           hex(JT.JmpOffset)));
    }
  }

  //===------------------------------------------------------------------===//
  // Fixpoint
  //===------------------------------------------------------------------===//

  /// Runs the whole block, returning the per-edge out states.
  std::vector<std::pair<uint32_t, AbsState>>
  transferBlock(uint32_t BI, AbsState S, Collector *C) {
    const Block &B = Blocks[BI];
    Minter M(BI);
    for (auto It = Instrs.lower_bound(B.Begin);
         It != Instrs.end() && It->first < B.End; ++It)
      transferInstr(S, It->first, It->second, M, C);
    std::vector<std::pair<uint32_t, AbsState>> Out;
    const Instr &Last = Instrs.at(B.LastOff);
    for (const auto &[SuccIdx, Kind] : Succs[BI]) {
      AbsState E = S;
      if (Kind == EdgeKind::CondTaken || Kind == EdgeKind::CondFall) {
        bool TakenIsZero = Last.Op == Opcode::Jz;
        bool IsZero =
            Kind == EdgeKind::CondTaken ? TakenIsZero : !TakenIsZero;
        refine(E, S.Regs[Last.Ra], IsZero);
      }
      Out.emplace_back(SuccIdx, std::move(E));
    }
    return Out;
  }

  AbsState entryState(uint32_t BI) {
    AbsState S;
    S.Reachable = true;
    for (unsigned R = 0; R != NumRegs; ++R)
      S.Regs[R] = AbsVal::top(entryTok(BI, R));
    return S;
  }

  AbsState joinState(const AbsState &A, const AbsState &B, uint32_t Blk) {
    AbsState R;
    R.Reachable = true;
    JoinCtx Ctx;
    std::unordered_set<uint64_t> Minted;
    std::vector<uint64_t> StackOwn;
    for (unsigned Reg = 0; Reg != NumRegs; ++Reg) {
      bool M = false;
      R.Regs[Reg] = joinVal(A.Regs[Reg], B.Regs[Reg], Ctx,
                            joinTok(Blk, Reg), M);
      if (M)
        Minted.insert(joinTok(Blk, Reg));
    }
    if (A.SpKnown && B.SpKnown && A.SpDelta == B.SpDelta) {
      R.SpKnown = true;
      R.SpDelta = A.SpDelta;
      unsigned Idx = 0;
      for (const auto &[Key, VA] : A.Stack) {
        uint64_t MT = joinTok(Blk, 32 + Idx++);
        const AbsVal *VB = B.slot(Key);
        if (!VB)
          continue;
        bool M = false;
        AbsVal J = joinVal(VA, *VB, Ctx, MT, M);
        if (M)
          Minted.insert(MT);
        if (J.K != VK::Top) {
          R.Stack.emplace_back(Key, J);
          StackOwn.push_back(MT);
        }
      }
    } else {
      R.SpKnown = false;
      R.SpDelta = 0;
    }
    if (!Minted.empty()) {
      // A re-minted token names a *merged* value. Any location carrying
      // the same token without being the location that minted it is a
      // stale copy from a previous visit of this join point, and any
      // relational fact about a re-minted token speaks about the old
      // incarnation. Both are demoted.
      unsigned Kill = 0;
      auto sweep = [&](AbsVal &V, uint64_t Own) {
        if ((Minted.count(V.Tok) && V.Tok != Own) ||
            (refBearing(V.K) && Minted.count(V.Ref)))
          V = AbsVal::top(joinTok(Blk, 64 + Kill++));
      };
      for (unsigned Reg = 0; Reg != NumRegs; ++Reg)
        sweep(R.Regs[Reg], joinTok(Blk, Reg));
      for (size_t I = 0; I != R.Stack.size(); ++I)
        sweep(R.Stack[I].second, StackOwn[I]);
    }
    return R;
  }

  /// Widening backstop: after too many in-state updates, snap every
  /// still-changing location of \p New (vs \p Old) to Top with a fixed
  /// token so the next join is a no-op.
  AbsState widen(const AbsState &Old, AbsState New, uint32_t Blk) {
    for (unsigned R = 0; R != NumRegs; ++R)
      if (New.Regs[R] != Old.Regs[R])
        New.Regs[R] = AbsVal::top(widenTok(Blk, R));
    if (!(New.SpKnown == Old.SpKnown && New.SpDelta == Old.SpDelta)) {
      New.SpKnown = false;
      New.SpDelta = 0;
      New.Stack.clear();
    }
    if (New.Stack != Old.Stack)
      New.Stack.clear();
    return New;
  }

  bool runFixpoint() {
    size_t N = Blocks.size();
    In.resize(N);
    Pred.assign(N, -1);
    Updates.assign(N, 0);
    std::deque<uint32_t> WL;
    std::vector<uint8_t> InWL(N, 0);
    for (uint32_t R : Roots) {
      In[R] = joinSeed(In[R], entryState(R), R);
      if (!InWL[R]) {
        WL.push_back(R);
        InWL[R] = 1;
      }
    }
    uint64_t MaxIters =
        Opts.MaxIters ? Opts.MaxIters
                      : std::max<uint64_t>(1024, uint64_t(N) * 256);
    while (!WL.empty()) {
      if (++Result.FixpointIters > MaxIters) {
        error(formatString("fixpoint did not converge after %llu "
                           "iterations",
                           hex(MaxIters)));
        return false;
      }
      uint32_t BI = WL.front();
      WL.pop_front();
      InWL[BI] = 0;
      for (auto &[Succ, St] : transferBlock(BI, In[BI], nullptr)) {
        bool Changed = false;
        if (!In[Succ].Reachable) {
          In[Succ] = std::move(St);
          Pred[Succ] = static_cast<int32_t>(BI);
          Changed = true;
        } else {
          AbsState New = joinState(In[Succ], St, Succ);
          if (!(New == In[Succ])) {
            if (++Updates[Succ] > Opts.WidenUpdates)
              New = widen(In[Succ], std::move(New), Succ);
            if (!(New == In[Succ])) {
              In[Succ] = std::move(New);
              Changed = true;
            }
          }
        }
        if (Changed && !InWL[Succ]) {
          WL.push_back(Succ);
          InWL[Succ] = 1;
        }
      }
    }
    return true;
  }

  AbsState joinSeed(const AbsState &Cur, AbsState Seed, uint32_t Blk) {
    if (!Cur.Reachable)
      return Seed;
    return joinState(Cur, Seed, Blk);
  }

  void finalPass() {
    for (uint32_t BI = 0; BI != Blocks.size(); ++BI) {
      if (!In[BI].Reachable)
        continue;
      Collector C{*this, BI};
      transferBlock(BI, In[BI], &C);
    }
  }

  void dump() {
    std::string &D = Result.BlockDump;
    for (uint32_t BI = 0; BI != Blocks.size(); ++BI) {
      const Block &B = Blocks[BI];
      D += formatString("bb%u [0x%llx, 0x%llx)", BI, hex(B.Begin),
                        hex(B.End));
      if (!In[BI].Reachable) {
        D += " unreachable\n";
        continue;
      }
      if (In[BI].SpKnown)
        D += formatString(" sp%+lld", (long long)In[BI].SpDelta);
      for (unsigned R = 0; R != NumRegs; ++R)
        if (In[BI].Regs[R].K != VK::Top)
          D += formatString(" r%u=%s", R,
                            printVal(In[BI].Regs[R]).c_str());
      for (const auto &[K, V] : In[BI].Stack)
        D += formatString(" [sp%+lld]=%s", (long long)(K - In[BI].SpDelta),
                          printVal(V).c_str());
      if (!Succs[BI].empty()) {
        D += " ->";
        for (const auto &[S, EK] : Succs[BI]) {
          (void)EK;
          D += formatString(" bb%u", S);
        }
      }
      D += "\n";
    }
  }

  const uint8_t *Code;
  size_t Size;
  const MCFIObject &Obj;
  const std::map<uint64_t, Instr> &Instrs;
  AbsIntOptions Opts;
  SemanticResult Result;

  std::unordered_map<uint64_t, uint32_t> SiteAt;
  std::unordered_map<uint64_t, const JumpTableInfo *> JTAt;
  std::unordered_set<uint64_t> TableOffsets;
  std::unordered_map<uint64_t, const RelocEntry *> RelocAt;

  std::vector<Block> Blocks;
  std::unordered_map<uint64_t, uint32_t> BlockAt;
  std::vector<std::vector<std::pair<uint32_t, EdgeKind>>> Succs;
  std::vector<uint32_t> Roots;
  std::vector<AbsState> In;
  std::vector<int32_t> Pred;
  std::vector<uint32_t> Updates;
  std::unordered_map<uint64_t, bool> Proven;
};

} // namespace

bool absint::disassembleAll(const uint8_t *Code, size_t Size,
                            const MCFIObject &Obj,
                            std::map<uint64_t, Instr> &Out,
                            std::string &Err) {
  std::vector<std::pair<uint64_t, uint64_t>> Ranges;
  for (const JumpTableInfo &JT : Obj.Aux.JumpTables)
    Ranges.emplace_back(JT.TableOffset,
                        JT.TableOffset + 8 * JT.Targets.size());
  std::sort(Ranges.begin(), Ranges.end());
  uint64_t Off = 0;
  while (Off < Size) {
    auto It = std::upper_bound(
        Ranges.begin(), Ranges.end(),
        std::make_pair(Off, std::numeric_limits<uint64_t>::max()));
    if (It != Ranges.begin()) {
      auto P = std::prev(It);
      if (Off >= P->first && Off < P->second) {
        Off = P->second;
        continue;
      }
    }
    Instr I;
    if (!decode(Code, Size, Off, I)) {
      Err = formatString("undecodable byte at offset 0x%llx", hex(Off));
      return false;
    }
    Out.emplace(Off, I);
    Off += I.Length;
  }
  return true;
}

SemanticResult absint::prove(const uint8_t *Code, size_t Size,
                             const MCFIObject &Obj,
                             const std::map<uint64_t, Instr> &Instrs,
                             const AbsIntOptions &Opts) {
  return Engine(Code, Size, Obj, Instrs, Opts).run();
}
